//! The solver dispatch layer: one [`Problem`] IR, one [`Backend`]
//! trait, one instrumented registry over every engine in the workspace.
//!
//! Applications describe *what* to search — row minima of a Monge
//! array, staircase minima over a boundary, tube minima of a composite
//! — as a [`Problem`] and hand it to a [`Dispatcher`]. The dispatcher
//! owns a registry of [`Backend`]s (sequential SMAWK, the rayon
//! engines, the PRAM simulator under each minimum primitive, the
//! hypercube simulator), checks each backend's [`Capabilities`] against
//! the problem kind and its structural requirements, picks an engine by
//! the size/calibration policy of [`crate::tuning`], and returns the
//! [`Solution`] together with a populated [`Telemetry`]: entry
//! evaluations, comparisons, forked rayon tasks, arena checkouts,
//! per-phase wall time, and — for the simulators — the machine-model
//! cost counters straight out of the run.
//!
//! ## Capability flags
//!
//! Eligibility is two-layered. [`Backend::capabilities`] is the static
//! kind mask (the Table 1.1–1.3 row: which problem families the engine
//! implements at all); [`Backend::admits`] refines it per-instance with
//! the structural requirements the IR can express:
//!
//! * the hypercube backend requires the `g(v[i], w[j])` generator form
//!   ([`Problem::with_rank`]) for rows and staircase problems — §3's
//!   machines distribute the generator vectors, not array entries — and
//!   implements tube *minima* only, a deliberately missing flag the
//!   registry surfaces instead of papering over;
//! * [`Structure::Plain`] rows (honest unstructured scans) run only on
//!   the host backends (sequential, rayon) — the simulators implement
//!   the paper's structured algorithms, not brute force;
//! * staircase-*inverse*-Monge is sequential-only, and the simulators
//!   answer rows problems under the paper's leftmost tie rule only.
//!
//! ## Selection policy
//!
//! Only host-execution backends are ever *auto*-selected: the
//! simulators exist to be asked for by name ([`Dispatcher::solve_on`]),
//! since running them instead of a host engine is never faster. Among
//! the host backends the policy is the grain policy of
//! [`crate::runtime`]: a problem whose search shape fits inside one
//! sequential grain (`seq_rows` rows, `seq_scan` columns —
//! `tube_seq_planes` planes for tubes) runs sequentially; anything
//! larger goes to rayon. [`Dispatcher::solve_calibrated`] consults the
//! persistent autotuner first ([`crate::autotune`]): a cached winner
//! names both the backend and the tuning outright (provenance
//! `cached`), a cold key is measured once (`measured`), and when the
//! autotuner has nothing — disabled, read-only miss, or another thread
//! mid-measurement — the call falls back to the one-shot calibration
//! probe (`probed`), which measures the per-entry cost of the
//! problem's own array so expensive generator entries flip the
//! grain decision exactly when they should. The chosen path is
//! stamped into [`Telemetry::provenance`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use monge_core::array2d::{Array2d, Negate};
use monge_core::problem::{
    lower_rows, mirror_indices, Metered, Objective, Problem, ProblemKind, Solution, Structure,
    Telemetry, TuningProvenance,
};
use monge_core::scratch::with_scratch;
use monge_core::smawk::{row_minima_totally_monotone, RowExtrema};
use monge_core::tiebreak::Tie;
use monge_core::value::Value;
use monge_core::{banded, eval, scratch, staircase, tube};

use crate::autotune::{self, AutotuneKey, AutotuneMode, Autotuner, Claim};
use crate::health::HealthRegistry;
use crate::pram_monge::{self, MinPrimitive};
use crate::tuning::Tuning;
use crate::vector_array::VectorArray;
use crate::{
    hc_monge, hc_staircase, hc_tube, pram_staircase, pram_tube, rayon_monge, rayon_staircase,
    rayon_tube, runtime,
};

/// The set of [`ProblemKind`]s a backend implements — a bitmask over
/// [`ProblemKind::ALL`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Capabilities(u32);

impl Capabilities {
    /// No kinds at all.
    pub const NONE: Capabilities = Capabilities(0);

    /// Builds a set from a list of kinds.
    pub const fn of(kinds: &[ProblemKind]) -> Self {
        let mut bits = 0u32;
        let mut i = 0;
        while i < kinds.len() {
            bits |= 1 << kinds[i] as u32;
            i += 1;
        }
        Capabilities(bits)
    }

    /// Does the set contain `kind`?
    pub const fn supports(self, kind: ProblemKind) -> bool {
        self.0 & (1 << kind as u32) != 0
    }

    /// The contained kinds, in [`ProblemKind::ALL`] order.
    pub fn kinds(self) -> Vec<ProblemKind> {
        ProblemKind::ALL
            .iter()
            .copied()
            .filter(|&k| self.supports(k))
            .collect()
    }
}

/// One solver engine behind the dispatch layer.
///
/// A backend consumes the [`Problem`] IR and produces a [`Solution`],
/// recording its phases, entry-evaluation count and (for simulators)
/// machine counters into the [`Telemetry`] it is handed. The dispatcher
/// stamps the identity fields, the wall clock and the process-global
/// counter deltas (comparisons, rayon tasks, arena checkouts) around
/// the call.
pub trait Backend<T: Value>: Send + Sync {
    /// Registry name (`"sequential"`, `"rayon"`, `"pram:tree"`, …).
    fn name(&self) -> &'static str;

    /// The problem kinds this backend implements at all.
    fn capabilities(&self) -> Capabilities;

    /// Instance-level refinement of [`Backend::capabilities`]:
    /// structural requirements (rank form, non-`Plain` structure,
    /// leftmost ties) the kind mask cannot express. Callers should use
    /// [`Backend::eligible`], which checks both layers.
    fn admits(&self, problem: &Problem<'_, T>) -> bool {
        let _ = problem;
        true
    }

    /// Can this backend solve this problem instance?
    fn eligible(&self, problem: &Problem<'_, T>) -> bool {
        self.capabilities().supports(problem.kind()) && self.admits(problem)
    }

    /// Solves the problem. Only called when [`Backend::eligible`]; may
    /// panic otherwise.
    fn solve(
        &self,
        problem: &Problem<'_, T>,
        tuning: &Tuning,
        telemetry: &mut Telemetry,
    ) -> Solution<T>;
}

/// Per-row optimum of one unstructured row, honoring the tie rule. The
/// shared leaf of both host backends' `Plain` paths (and of the guarded
/// layer's brute-force terminal backend).
pub(crate) fn plain_row_opt<T: Value, A: Array2d<T>>(
    a: &A,
    i: usize,
    objective: Objective,
    tie: Tie,
    buf: &mut Vec<T>,
) -> usize {
    let n = a.cols();
    match (objective, tie) {
        (Objective::Minimize, Tie::Left) => eval::interval_argmin(a, i, 0, n, buf).0,
        (Objective::Minimize, Tie::Right) => eval::interval_argmin_rightmost(a, i, 0, n, buf).0,
        (Objective::Maximize, Tie::Left) => eval::interval_argmax(a, i, 0, n, buf).0,
        // Rightmost maxima = rightmost minima of the negation.
        (Objective::Maximize, Tie::Right) => {
            eval::interval_argmin_rightmost(&Negate(a), i, 0, n, buf).0
        }
    }
}

/// Gathers banded optimum values from the (metered) array.
pub(crate) fn banded_values<T: Value, A: Array2d<T>>(
    a: &A,
    index: &[Option<usize>],
) -> Vec<Option<T>> {
    index
        .iter()
        .enumerate()
        .map(|(i, j)| j.map(|j| a.entry(i, j)))
        .collect()
}

/// The sequential reference backend: SMAWK and the other `monge-core`
/// algorithms. Implements every problem kind, every structure and both
/// tie rules — the registry's universal donor and the conformance
/// suite's baseline.
pub struct SequentialBackend;

impl<T: Value> Backend<T> for SequentialBackend {
    fn name(&self) -> &'static str {
        "sequential"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities::of(&ProblemKind::ALL)
    }

    fn solve(
        &self,
        problem: &Problem<'_, T>,
        _tuning: &Tuning,
        telemetry: &mut Telemetry,
    ) -> Solution<T> {
        match *problem {
            Problem::Rows {
                array,
                structure,
                objective,
                tie,
                ..
            } => {
                let a = Metered::new(array);
                let t0 = Instant::now();
                let index = if structure == Structure::Plain {
                    with_scratch(|buf: &mut Vec<T>| {
                        (0..a.rows())
                            .map(|i| plain_row_opt(&a, i, objective, tie, buf))
                            .collect()
                    })
                } else {
                    let (mut index, mirror) =
                        lower_rows(&a, structure, objective, tie, |arr, tt| {
                            row_minima_totally_monotone(&arr, tt)
                        });
                    if let Some(n) = mirror {
                        mirror_indices(&mut index, n);
                    }
                    index
                };
                telemetry.record_phase("search", t0.elapsed().as_nanos());
                let t1 = Instant::now();
                let sol = Solution::Rows(RowExtrema::from_indices(&a, index));
                telemetry.record_phase("finalize", t1.elapsed().as_nanos());
                telemetry.evaluations += a.evaluations();
                sol
            }
            Problem::Staircase {
                array,
                boundary,
                structure,
                ..
            } => {
                let a = Metered::new(array);
                let t0 = Instant::now();
                let index = match structure {
                    Structure::InverseMonge => {
                        staircase::staircase_inverse_row_minima(&a, boundary)
                    }
                    _ => staircase::staircase_row_minima(&a, boundary),
                };
                telemetry.record_phase("search", t0.elapsed().as_nanos());
                let t1 = Instant::now();
                let sol = Solution::Rows(RowExtrema::from_staircase_indices(&a, boundary, index));
                telemetry.record_phase("finalize", t1.elapsed().as_nanos());
                telemetry.evaluations += a.evaluations();
                sol
            }
            Problem::Banded {
                array,
                lo,
                hi,
                objective,
            } => {
                let a = Metered::new(array);
                let t0 = Instant::now();
                let index = match objective {
                    Objective::Minimize => banded::banded_row_minima_monge(&a, lo, hi),
                    Objective::Maximize => banded::banded_row_maxima_monge(&a, lo, hi),
                };
                telemetry.record_phase("search", t0.elapsed().as_nanos());
                let t1 = Instant::now();
                let value = banded_values(&a, &index);
                telemetry.record_phase("finalize", t1.elapsed().as_nanos());
                telemetry.evaluations += a.evaluations();
                Solution::Banded { index, value }
            }
            Problem::Tube { d, e, objective } => {
                let (dm, em) = (Metered::new(d), Metered::new(e));
                let t0 = Instant::now();
                let ex = match objective {
                    Objective::Minimize => tube::tube_minima(&dm, &em),
                    Objective::Maximize => tube::tube_maxima(&dm, &em),
                };
                telemetry.record_phase("search", t0.elapsed().as_nanos());
                telemetry.evaluations += dm.evaluations() + em.evaluations();
                Solution::Tube(ex)
            }
        }
    }
}

/// The multithreaded host backend: the `rayon_*` engines. Handles all
/// rows problems (including `Plain`, by per-row parallel scans),
/// staircase-Monge, and both tube kinds; banded problems have no rayon
/// engine and fall to the sequential backend.
pub struct RayonBackend;

impl<T: Value> Backend<T> for RayonBackend {
    fn name(&self) -> &'static str {
        "rayon"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities::of(&[
            ProblemKind::RowMinima,
            ProblemKind::RowMaxima,
            ProblemKind::StaircaseRowMinima,
            ProblemKind::TubeMinima,
            ProblemKind::TubeMaxima,
        ])
    }

    fn admits(&self, problem: &Problem<'_, T>) -> bool {
        match problem {
            Problem::Staircase { structure, .. } => *structure == Structure::Monge,
            _ => true,
        }
    }

    fn solve(
        &self,
        problem: &Problem<'_, T>,
        tuning: &Tuning,
        telemetry: &mut Telemetry,
    ) -> Solution<T> {
        use rayon::prelude::*;
        let t = *tuning;
        match *problem {
            Problem::Rows {
                array,
                structure,
                objective,
                tie,
                ..
            } => {
                let a = Metered::new(array);
                let t0 = Instant::now();
                let index = if structure == Structure::Plain {
                    runtime::add_tasks(a.rows() as u64);
                    (0..a.rows())
                        .into_par_iter()
                        .map(|i| {
                            with_scratch(|buf: &mut Vec<T>| {
                                plain_row_opt(&a, i, objective, tie, buf)
                            })
                        })
                        .collect()
                } else {
                    let (mut index, mirror) =
                        lower_rows(&a, structure, objective, tie, |arr, tt| {
                            rayon_monge::par_rowmin_with_tie(&arr, tt, t)
                        });
                    if let Some(n) = mirror {
                        mirror_indices(&mut index, n);
                    }
                    index
                };
                telemetry.record_phase("search", t0.elapsed().as_nanos());
                let t1 = Instant::now();
                let sol = Solution::Rows(RowExtrema::from_indices(&a, index));
                telemetry.record_phase("finalize", t1.elapsed().as_nanos());
                telemetry.evaluations += a.evaluations();
                sol
            }
            Problem::Staircase {
                array, boundary, ..
            } => {
                let a = Metered::new(array);
                let t0 = Instant::now();
                let index = rayon_staircase::par_staircase_row_minima_with(&a, boundary, t);
                telemetry.record_phase("search", t0.elapsed().as_nanos());
                let t1 = Instant::now();
                let sol = Solution::Rows(RowExtrema::from_staircase_indices(&a, boundary, index));
                telemetry.record_phase("finalize", t1.elapsed().as_nanos());
                telemetry.evaluations += a.evaluations();
                sol
            }
            Problem::Tube { d, e, objective } => {
                let (dm, em) = (Metered::new(d), Metered::new(e));
                let t0 = Instant::now();
                let ex = match objective {
                    Objective::Minimize => rayon_tube::par_tube_minima(&dm, &em),
                    Objective::Maximize => rayon_tube::par_tube_maxima(&dm, &em),
                };
                telemetry.record_phase("search", t0.elapsed().as_nanos());
                telemetry.evaluations += dm.evaluations() + em.evaluations();
                Solution::Tube(ex)
            }
            Problem::Banded { .. } => {
                panic!("rayon backend has no banded engine (check eligible() first)")
            }
        }
    }
}

/// The simulated-PRAM backend (one registry entry per minimum
/// primitive). Populates [`Telemetry::machine`] with the simulator's
/// step/work/processor accounting — the Table 1.1/1.2/1.3 numbers.
pub struct PramBackend {
    prim: MinPrimitive,
}

impl PramBackend {
    /// A PRAM backend running `prim` as its parallel-minimum primitive.
    pub fn new(prim: MinPrimitive) -> Self {
        Self { prim }
    }

    /// The registry name for a primitive (`"pram:tree"`, …).
    pub fn name_of(prim: MinPrimitive) -> &'static str {
        match prim {
            MinPrimitive::Tree => "pram:tree",
            MinPrimitive::DoublyLog => "pram:doubly-log",
            MinPrimitive::Constant => "pram:constant",
            MinPrimitive::Combining => "pram:combining",
        }
    }
}

impl<T: Value> Backend<T> for PramBackend {
    fn name(&self) -> &'static str {
        Self::name_of(self.prim)
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities::of(&ProblemKind::ALL)
    }

    fn admits(&self, problem: &Problem<'_, T>) -> bool {
        match problem {
            Problem::Rows { structure, tie, .. } => {
                *structure != Structure::Plain && *tie == Tie::Left
            }
            Problem::Staircase { structure, .. } => *structure == Structure::Monge,
            _ => true,
        }
    }

    fn solve(
        &self,
        problem: &Problem<'_, T>,
        tuning: &Tuning,
        telemetry: &mut Telemetry,
    ) -> Solution<T> {
        let prim = self.prim;
        let stamp = |telemetry: &mut Telemetry, m: &monge_pram::Metrics| {
            telemetry.machine.steps = m.steps;
            telemetry.machine.work = m.work;
            telemetry.machine.processors = m.peak_processors;
            telemetry.machine.reads = m.reads;
            telemetry.machine.writes = m.writes;
            telemetry.machine.concurrent_read_events = m.concurrent_read_events;
            telemetry.machine.concurrent_write_events = m.concurrent_write_events;
            telemetry.machine.violations = m.violations;
        };
        match *problem {
            Problem::Rows {
                array,
                structure,
                objective,
                ..
            } => {
                let a = Metered::new(array);
                let t0 = Instant::now();
                let run = match (structure, objective) {
                    (Structure::Monge, Objective::Minimize) => {
                        pram_monge::pram_row_minima_monge(&a, prim)
                    }
                    (Structure::Monge, Objective::Maximize) => {
                        pram_monge::pram_row_maxima_monge(&a, prim)
                    }
                    (Structure::InverseMonge, Objective::Minimize) => {
                        pram_monge::pram_row_minima_inverse_monge(&a, prim)
                    }
                    (Structure::InverseMonge, Objective::Maximize) => {
                        pram_monge::pram_row_maxima_inverse_monge(&a, prim)
                    }
                    (Structure::Plain, _) => {
                        panic!("PRAM backend has no unstructured engine (check eligible() first)")
                    }
                };
                telemetry.record_phase("search", t0.elapsed().as_nanos());
                stamp(telemetry, &run.metrics);
                let t1 = Instant::now();
                let sol = Solution::Rows(RowExtrema::from_indices(&a, run.index));
                telemetry.record_phase("finalize", t1.elapsed().as_nanos());
                telemetry.evaluations += a.evaluations();
                sol
            }
            Problem::Staircase {
                array, boundary, ..
            } => {
                let a = Metered::new(array);
                let t0 = Instant::now();
                let run =
                    pram_staircase::pram_staircase_row_minima_with(&a, boundary, prim, *tuning);
                telemetry.record_phase("search", t0.elapsed().as_nanos());
                stamp(telemetry, &run.metrics);
                let t1 = Instant::now();
                let sol =
                    Solution::Rows(RowExtrema::from_staircase_indices(&a, boundary, run.index));
                telemetry.record_phase("finalize", t1.elapsed().as_nanos());
                telemetry.evaluations += a.evaluations();
                sol
            }
            Problem::Banded {
                array,
                lo,
                hi,
                objective,
            } => {
                let a = Metered::new(array);
                let t0 = Instant::now();
                let (index, metrics) = match objective {
                    Objective::Minimize => {
                        pram_monge::pram_banded_row_minima_monge(&a, lo, hi, prim)
                    }
                    Objective::Maximize => {
                        pram_monge::pram_banded_row_maxima_monge(&a, lo, hi, prim)
                    }
                };
                telemetry.record_phase("search", t0.elapsed().as_nanos());
                stamp(telemetry, &metrics);
                let t1 = Instant::now();
                let value = banded_values(&a, &index);
                telemetry.record_phase("finalize", t1.elapsed().as_nanos());
                telemetry.evaluations += a.evaluations();
                Solution::Banded { index, value }
            }
            Problem::Tube { d, e, objective } => {
                let (dm, em) = (Metered::new(d), Metered::new(e));
                let t0 = Instant::now();
                let run = match objective {
                    Objective::Minimize => pram_tube::pram_tube_minima(&dm, &em, prim),
                    Objective::Maximize => pram_tube::pram_tube_maxima(&dm, &em, prim),
                };
                telemetry.record_phase("search", t0.elapsed().as_nanos());
                stamp(telemetry, &run.metrics);
                telemetry.evaluations += dm.evaluations() + em.evaluations();
                Solution::Tube(run.extrema)
            }
        }
    }
}

/// The simulated-hypercube backend. Rows and staircase problems must
/// carry the `g(v[i], w[j])` rank form (§3's distributed-input model);
/// tube problems take the two factors directly. Tube *maxima* is
/// deliberately unimplemented — the missing capability flag the
/// registry reports honestly. Populates the network and CCC /
/// shuffle-exchange emulation counters.
pub struct HypercubeBackend;

/// Stamps an [`hc_monge::HcRun`]'s metrics into the telemetry.
fn stamp_hc(
    telemetry: &mut Telemetry,
    metrics: &monge_hypercube::NetMetrics,
    emulation: &monge_hypercube::topology::EmulationCost,
) {
    telemetry.machine.local_steps = metrics.local_steps;
    telemetry.machine.comm_steps = metrics.comm_steps;
    telemetry.machine.messages = metrics.messages;
    telemetry.machine.ccc_steps = emulation.ccc_steps;
    telemetry.machine.se_steps = emulation.se_steps;
}

impl<T: Value> Backend<T> for HypercubeBackend {
    fn name(&self) -> &'static str {
        "hypercube"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities::of(&[
            ProblemKind::RowMinima,
            ProblemKind::RowMaxima,
            ProblemKind::StaircaseRowMinima,
            ProblemKind::TubeMinima,
        ])
    }

    fn admits(&self, problem: &Problem<'_, T>) -> bool {
        match problem {
            Problem::Rows { structure, tie, .. } => {
                problem.has_rank() && *structure != Structure::Plain && *tie == Tie::Left
            }
            Problem::Staircase { structure, .. } => {
                problem.has_rank() && *structure == Structure::Monge
            }
            Problem::Tube { .. } => true,
            Problem::Banded { .. } => false,
        }
    }

    fn solve(
        &self,
        problem: &Problem<'_, T>,
        _tuning: &Tuning,
        telemetry: &mut Telemetry,
    ) -> Solution<T> {
        match *problem {
            Problem::Rows {
                array,
                structure,
                objective,
                rank,
                ..
            } => {
                let rank = rank.expect("hypercube rows need the rank form (check eligible())");
                let t0 = Instant::now();
                // Count generator evaluations: every entry the network
                // computes goes through this closure.
                let evals = AtomicU64::new(0);
                let g = rank.g;
                let run = {
                    let counting = |x: T, y: T| {
                        evals.fetch_add(1, Ordering::Relaxed);
                        g(x, y)
                    };
                    let negating = |x: T, y: T| {
                        evals.fetch_add(1, Ordering::Relaxed);
                        g(x, y).neg()
                    };
                    // The §1.2 dualities, in generator form: negating g
                    // turns inverse-Monge into Monge and swaps the
                    // objective; hc_row_maxima owns the column mirror.
                    match (structure, objective) {
                        (Structure::Monge, Objective::Minimize) => hc_monge::hc_row_minima(
                            &VectorArray::new(rank.v.to_vec(), rank.w.to_vec(), counting),
                        ),
                        (Structure::Monge, Objective::Maximize) => hc_monge::hc_row_maxima(
                            &VectorArray::new(rank.v.to_vec(), rank.w.to_vec(), counting),
                        ),
                        (Structure::InverseMonge, Objective::Maximize) => hc_monge::hc_row_minima(
                            &VectorArray::new(rank.v.to_vec(), rank.w.to_vec(), negating),
                        ),
                        (Structure::InverseMonge, Objective::Minimize) => hc_monge::hc_row_maxima(
                            &VectorArray::new(rank.v.to_vec(), rank.w.to_vec(), negating),
                        ),
                        (Structure::Plain, _) => {
                            panic!("hypercube backend has no unstructured engine")
                        }
                    }
                };
                telemetry.record_phase("search", t0.elapsed().as_nanos());
                stamp_hc(telemetry, &run.metrics, &run.emulation);
                telemetry.evaluations += evals.load(Ordering::Relaxed);
                let t1 = Instant::now();
                let a = Metered::new(array);
                let sol = Solution::Rows(RowExtrema::from_indices(&a, run.index));
                telemetry.record_phase("finalize", t1.elapsed().as_nanos());
                telemetry.evaluations += a.evaluations();
                sol
            }
            Problem::Staircase {
                array,
                boundary,
                rank,
                ..
            } => {
                let rank = rank.expect("hypercube staircase needs the rank form");
                let t0 = Instant::now();
                let evals = AtomicU64::new(0);
                let g = rank.g;
                let counting = |x: T, y: T| {
                    evals.fetch_add(1, Ordering::Relaxed);
                    g(x, y)
                };
                let va = VectorArray::new(rank.v.to_vec(), rank.w.to_vec(), counting);
                let run = hc_staircase::hc_staircase_row_minima(&va, boundary);
                telemetry.record_phase("search", t0.elapsed().as_nanos());
                stamp_hc(telemetry, &run.metrics, &run.emulation);
                telemetry.evaluations += evals.load(Ordering::Relaxed);
                let t1 = Instant::now();
                let a = Metered::new(array);
                let sol =
                    Solution::Rows(RowExtrema::from_staircase_indices(&a, boundary, run.index));
                telemetry.record_phase("finalize", t1.elapsed().as_nanos());
                telemetry.evaluations += a.evaluations();
                sol
            }
            Problem::Tube { d, e, objective } => {
                assert_eq!(
                    objective,
                    Objective::Minimize,
                    "hypercube tube maxima is not implemented (missing capability flag)"
                );
                let (dm, em) = (Metered::new(d), Metered::new(e));
                let t0 = Instant::now();
                let run = hc_tube::hc_tube_minima(&dm, &em);
                telemetry.record_phase("search", t0.elapsed().as_nanos());
                stamp_hc(telemetry, &run.metrics, &run.emulation);
                telemetry.evaluations += dm.evaluations() + em.evaluations();
                Solution::Tube(run.extrema)
            }
            Problem::Banded { .. } => {
                panic!("hypercube backend has no banded engine")
            }
        }
    }
}

/// What the autotune consultation decided for one solve: the tuning to
/// run with, the winner backend when the table (or a fresh measurement)
/// named one, and the provenance to stamp into the telemetry.
pub(crate) struct AutotuneDecision {
    pub(crate) tuning: Tuning,
    pub(crate) backend: Option<String>,
    pub(crate) provenance: TuningProvenance,
}

/// The instrumented engine registry: owns the [`Backend`]s, answers
/// eligibility queries, auto-selects a host engine by the grain policy,
/// and wraps every solve with the telemetry bookkeeping.
pub struct Dispatcher<T: Value> {
    backends: Vec<Box<dyn Backend<T>>>,
    /// `None` means the process-global [`crate::autotune::global`]
    /// table; tests attach isolated instances.
    autotuner: Option<Arc<Autotuner>>,
    /// Per-dispatcher fault memory: breaker states, outcome windows,
    /// retry budget ([`crate::health`]). Fresh (environment-configured,
    /// monotonic clock) per dispatcher unless a shared or virtual-clock
    /// instance is attached.
    health: Arc<HealthRegistry>,
}

impl<T: Value> Default for Dispatcher<T> {
    fn default() -> Self {
        Self::with_default_backends()
    }
}

impl<T: Value> Dispatcher<T> {
    /// An empty registry.
    pub fn new() -> Self {
        Self {
            backends: Vec::new(),
            autotuner: None,
            health: Arc::new(HealthRegistry::from_env()),
        }
    }

    /// Attaches a dedicated [`Autotuner`] instance to this dispatcher
    /// instead of the process-global table — how tests isolate their
    /// measurement counters, and how an application can scope a winner
    /// table to one workload.
    pub fn with_autotuner(mut self, tuner: Arc<Autotuner>) -> Self {
        self.autotuner = Some(tuner);
        self
    }

    /// Replaces this dispatcher's [`HealthRegistry`] — how tests attach
    /// a virtual-clock registry, and how several dispatchers can share
    /// one fault memory.
    pub fn with_health_registry(mut self, health: Arc<HealthRegistry>) -> Self {
        self.health = health;
        self
    }

    /// The fault memory consulted by the guarded chain
    /// ([`crate::guarded`]) and the batch layer ([`crate::batch`]):
    /// breaker admission, outcome windows, the global retry budget.
    pub fn health(&self) -> &Arc<HealthRegistry> {
        &self.health
    }

    /// The autotuner behind [`Dispatcher::solve_calibrated`] and batch
    /// group tuning: the attached instance, else the process-global
    /// table.
    pub fn autotuner(&self) -> &Autotuner {
        match &self.autotuner {
            Some(tuner) => tuner,
            None => autotune::global(),
        }
    }

    /// The standard registry: sequential, rayon, the two headline PRAM
    /// primitives (doubly-logarithmic CRCW and the constant-time
    /// quadratic-processor minimum) and the hypercube simulator.
    pub fn with_default_backends() -> Self {
        let mut d = Self::new();
        d.register(Box::new(SequentialBackend));
        d.register(Box::new(RayonBackend));
        d.register(Box::new(PramBackend::new(MinPrimitive::DoublyLog)));
        d.register(Box::new(PramBackend::new(MinPrimitive::Constant)));
        d.register(Box::new(HypercubeBackend));
        d
    }

    /// [`Dispatcher::with_default_backends`] plus the remaining PRAM
    /// primitives (`Tree`, `Combining`) — the full Table 1.1 column set,
    /// used by the bench tables and the conformance suite.
    pub fn with_all_backends() -> Self {
        let mut d = Self::with_default_backends();
        d.register(Box::new(PramBackend::new(MinPrimitive::Tree)));
        d.register(Box::new(PramBackend::new(MinPrimitive::Combining)));
        d
    }

    /// Adds a backend to the registry.
    pub fn register(&mut self, backend: Box<dyn Backend<T>>) {
        self.backends.push(backend);
    }

    /// Every registered backend, in registration order.
    pub fn backends(&self) -> impl Iterator<Item = &dyn Backend<T>> {
        self.backends.iter().map(|b| b.as_ref())
    }

    /// The registered backends eligible for `problem`.
    pub fn eligible(&self, problem: &Problem<'_, T>) -> Vec<&dyn Backend<T>> {
        self.backends().filter(|b| b.eligible(problem)).collect()
    }

    /// Looks a backend up by registry name.
    pub fn find(&self, name: &str) -> Option<&dyn Backend<T>> {
        self.backends().find(|b| b.name() == name)
    }

    /// Auto-selects a backend: the host engine the grain policy picks
    /// for this problem's search shape. Simulator backends are never
    /// auto-selected — ask for them by name via [`Dispatcher::solve_on`].
    ///
    /// # Panics
    /// If no registered host backend is eligible.
    pub fn select(&self, problem: &Problem<'_, T>, tuning: &Tuning) -> &dyn Backend<T> {
        let wants_parallel = match problem {
            Problem::Tube { d, .. } => d.rows() > tuning.tube_seq_planes.max(1),
            _ => {
                let (m, n) = problem.search_shape();
                m > tuning.seq_rows.max(1) || n > tuning.seq_scan.max(1)
            }
        };
        let pick = |name: &str| self.find(name).filter(|b| b.eligible(problem));
        let choice = if wants_parallel {
            pick("rayon").or_else(|| pick("sequential"))
        } else {
            pick("sequential").or_else(|| pick("rayon"))
        };
        choice.unwrap_or_else(|| {
            panic!(
                "no host backend registered for {:?} (eligible: {:?})",
                problem,
                self.eligible(problem)
                    .iter()
                    .map(|b| b.name())
                    .collect::<Vec<_>>()
            )
        })
    }

    /// Solves with environment-seeded tuning.
    pub fn solve(&self, problem: &Problem<'_, T>) -> (Solution<T>, Telemetry) {
        self.solve_with(problem, Tuning::from_env())
    }

    /// Solves with explicit tuning: auto-selects, runs, instruments.
    pub fn solve_with(&self, problem: &Problem<'_, T>, tuning: Tuning) -> (Solution<T>, Telemetry) {
        let backend = self.select(problem, &tuning);
        self.run(backend, problem, &tuning)
    }

    /// Solves with *measured* selection: consults the persistent
    /// autotuner ([`crate::autotune`]) for this problem's key — running
    /// the single-flight candidate measurement on first encounter — and
    /// falls back to the one-shot calibration probe
    /// ([`crate::runtime::calibrate`]) whenever the autotuner has
    /// nothing for this call (disabled, read-only miss, or another
    /// thread mid-measurement). A warm key is a hash-map lookup: no
    /// probe, no measurement, no overhead beyond [`Dispatcher::solve_with`].
    ///
    /// The returned [`Telemetry::provenance`] says which path decided
    /// the solve: `cached`, `measured`, or `probed`.
    pub fn solve_calibrated(&self, problem: &Problem<'_, T>) -> (Solution<T>, Telemetry) {
        let decision = self.autotune_decision(problem);
        let backend = decision
            .backend
            .as_deref()
            .and_then(|name| self.find(name))
            .filter(|b| b.eligible(problem))
            .unwrap_or_else(|| self.select(problem, &decision.tuning));
        let (solution, mut telemetry) = self.run(backend, problem, &decision.tuning);
        telemetry.provenance = Some(decision.provenance);
        (solution, telemetry)
    }

    /// The autotune consultation shared by [`Dispatcher::solve_calibrated`]
    /// and the batch layer's group tuning: winner from the table
    /// (re-overlaid with the `MONGE_*` environment, which outranks the
    /// cache), measured on a cold key, calibration probe otherwise.
    pub(crate) fn autotune_decision(&self, problem: &Problem<'_, T>) -> AutotuneDecision {
        let tuner = self.autotuner();
        let (m, n) = problem.search_shape();
        if tuner.mode() != AutotuneMode::Off && m > 0 && n > 0 {
            match tuner.begin(AutotuneKey::of(problem)) {
                Claim::Hit(w) => {
                    return AutotuneDecision {
                        tuning: w.tuning.env_overlay(),
                        backend: Some(w.backend),
                        provenance: TuningProvenance::Cached,
                    }
                }
                Claim::Measure(token) => {
                    if let Some(w) = autotune::measure(self, problem) {
                        let decision = AutotuneDecision {
                            tuning: w.tuning.env_overlay(),
                            backend: Some(w.backend.clone()),
                            provenance: TuningProvenance::Measured,
                        };
                        token.fulfill(w);
                        return decision;
                    }
                    // No eligible candidate (the token's drop released
                    // the claim): probe like everyone else.
                }
                Claim::Pass => {}
            }
        }
        // `calibrate` env-overlays its measured values itself.
        AutotuneDecision {
            tuning: runtime::calibrate(&problem.primary_array()),
            backend: None,
            provenance: TuningProvenance::Probed,
        }
    }

    /// Solves on the named backend (simulators included), or `None` if
    /// the name is unknown or the backend is not eligible for this
    /// problem — the registry's honest answer to a missing capability.
    pub fn solve_on(
        &self,
        name: &str,
        problem: &Problem<'_, T>,
        tuning: Tuning,
    ) -> Option<(Solution<T>, Telemetry)> {
        let backend = self.find(name)?;
        if !backend.eligible(problem) {
            return None;
        }
        Some(self.run(backend, problem, &tuning))
    }

    /// The instrumentation wrapper: snapshots the process-global
    /// counters, runs the backend, stamps identity, wall clock and
    /// counter deltas.
    pub(crate) fn run(
        &self,
        backend: &dyn Backend<T>,
        problem: &Problem<'_, T>,
        tuning: &Tuning,
    ) -> (Solution<T>, Telemetry) {
        // Honor the tuning's kernel request before any scan runs; the
        // selection is process-global (see `monge_core::kernel`), so a
        // `Scalar`/`Simd` pin here outlives the solve by design —
        // callers mixing pinned tunings across threads should
        // serialize solves themselves.
        tuning.apply_kernel();
        let mut telemetry = Telemetry {
            backend: backend.name(),
            kind: Some(problem.kind()),
            // Callers that hand a tuning in directly (per-call or
            // env-seeded) are the `default` provenance; the autotuned
            // entry points overwrite this with the path that ran.
            provenance: Some(TuningProvenance::Default),
            ..Telemetry::default()
        };
        let comparisons0 = eval::comparison_count();
        let checkouts0 = scratch::checkout_count();
        let tasks0 = runtime::task_count();
        let start = Instant::now();
        let solution = backend.solve(problem, tuning, &mut telemetry);
        telemetry.total_nanos = start.elapsed().as_nanos();
        telemetry.comparisons = eval::comparison_count().saturating_sub(comparisons0);
        telemetry.arena_checkouts = scratch::checkout_count().saturating_sub(checkouts0);
        telemetry.tasks = runtime::task_count().saturating_sub(tasks0);
        (solution, telemetry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use monge_core::array2d::Dense;
    use monge_core::generators::random_monge_dense;
    use monge_core::monge::{brute_row_maxima, brute_row_minima};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn monge_fixture(m: usize, n: usize, seed: u64) -> Dense<i64> {
        let mut rng = StdRng::seed_from_u64(seed);
        random_monge_dense(m, n, &mut rng)
    }

    #[test]
    fn capability_sets_roundtrip() {
        let c = Capabilities::of(&[ProblemKind::RowMinima, ProblemKind::TubeMaxima]);
        assert!(c.supports(ProblemKind::RowMinima));
        assert!(c.supports(ProblemKind::TubeMaxima));
        assert!(!c.supports(ProblemKind::BandedRowMinima));
        assert_eq!(
            c.kinds(),
            vec![ProblemKind::RowMinima, ProblemKind::TubeMaxima]
        );
        assert_eq!(Capabilities::NONE.kinds(), vec![]);
    }

    #[test]
    fn auto_selection_respects_the_grain_policy() {
        let d = Dispatcher::<i64>::with_default_backends();
        let small = monge_fixture(4, 4, 1);
        let big = monge_fixture(4096, 8, 2);
        let t = Tuning::DEFAULT;
        assert_eq!(
            d.select(&Problem::row_minima(&small), &t).name(),
            "sequential"
        );
        assert_eq!(d.select(&Problem::row_minima(&big), &t).name(), "rayon");
    }

    #[test]
    fn simulators_are_never_auto_selected() {
        let d = Dispatcher::<i64>::with_all_backends();
        let a = monge_fixture(512, 512, 3);
        let name = d.select(&Problem::row_minima(&a), &Tuning::DEFAULT).name();
        assert!(name == "sequential" || name == "rayon", "picked {name}");
    }

    #[test]
    fn banded_problems_fall_back_to_sequential() {
        let d = Dispatcher::<i64>::with_default_backends();
        let a = monge_fixture(4096, 16, 4);
        let lo = vec![0usize; 4096];
        let hi = vec![16usize; 4096];
        let p = Problem::banded_row_minima(&a, &lo, &hi);
        // Larger than every cutoff, but rayon has no banded engine.
        assert_eq!(d.select(&p, &Tuning::DEFAULT).name(), "sequential");
    }

    #[test]
    fn dispatched_rows_match_brute_on_every_backend() {
        let d = Dispatcher::<i64>::with_all_backends();
        let a = monge_fixture(24, 17, 5);
        let v: Vec<i64> = (0..24).map(|i| i as i64).collect();
        let w: Vec<i64> = (0..17).map(|j| j as i64).collect();
        let g = |x: i64, y: i64| (x - y) * (x - y);
        let p = Problem::row_minima(&a);
        let want = brute_row_minima(&a);
        for b in d.eligible(&p) {
            let (sol, tel) = d.solve_on(b.name(), &p, Tuning::DEFAULT).unwrap();
            assert_eq!(sol.rows().index, want, "{}", b.name());
            assert!(tel.evaluations > 0, "{} evaluations", b.name());
        }
        // The rank form unlocks the hypercube; the array and generator
        // must agree for the comparison to be meaningful.
        let rk = Dense::tabulate(24, 17, |i, j| g(v[i], w[j]));
        let p = Problem::row_minima(&rk).with_rank(&v, &w, &g);
        let want = brute_row_minima(&rk);
        let (sol, tel) = d.solve_on("hypercube", &p, Tuning::DEFAULT).unwrap();
        assert_eq!(sol.rows().index, want);
        assert!(tel.evaluations > 0);
        assert!(tel.machine.comm_steps > 0);
    }

    #[test]
    fn maxima_are_solved_via_the_lowering_not_a_twin() {
        let d = Dispatcher::<i64>::with_default_backends();
        let a = monge_fixture(30, 19, 6);
        let p = Problem::row_maxima(&a);
        let want = brute_row_maxima(&a);
        for b in d.eligible(&p) {
            let (sol, _) = d.solve_on(b.name(), &p, Tuning::DEFAULT).unwrap();
            assert_eq!(sol.rows().index, want, "{}", b.name());
        }
    }

    #[test]
    fn missing_capability_is_an_honest_none() {
        let d = Dispatcher::<i64>::with_default_backends();
        let a = monge_fixture(6, 6, 7);
        let e = monge_fixture(6, 6, 8);
        let p = Problem::tube_maxima(&a, &e);
        // No rank form → hypercube ineligible for rows; tube maxima →
        // hypercube ineligible outright.
        assert!(d.solve_on("hypercube", &p, Tuning::DEFAULT).is_none());
        assert!(d.solve_on("no-such-backend", &p, Tuning::DEFAULT).is_none());
        let rows = Problem::row_minima(&a);
        assert!(d.solve_on("hypercube", &rows, Tuning::DEFAULT).is_none());
    }

    #[test]
    fn telemetry_counts_tasks_and_checkouts_under_rayon() {
        let d = Dispatcher::<i64>::with_default_backends();
        let a = monge_fixture(600, 40, 9);
        let p = Problem::row_minima(&a);
        let t = Tuning {
            seq_rows: 4,
            ..Tuning::DEFAULT
        };
        let (sol, tel) = d.solve_on("rayon", &p, t).unwrap();
        assert_eq!(sol.rows().index, brute_row_minima(&a));
        assert!(tel.tasks > 0, "tasks = {}", tel.tasks);
        assert!(tel.arena_checkouts > 0);
        assert!(tel.evaluations > 0);
        assert_eq!(tel.backend, "rayon");
        assert_eq!(tel.kind, Some(ProblemKind::RowMinima));
    }

    #[test]
    fn plain_rows_run_on_host_backends_only() {
        // Not Monge: a checkerboard. Plain structure is the only honest
        // description, and only the host backends accept it.
        let a = Dense::tabulate(9, 9, |i, j| if (i + j) % 2 == 0 { 0i64 } else { 1 });
        let d = Dispatcher::<i64>::with_all_backends();
        let p = Problem::plain_row_minima(&a);
        let names: Vec<&str> = d.eligible(&p).iter().map(|b| b.name()).collect();
        assert_eq!(names, vec!["sequential", "rayon"]);
        let want = brute_row_minima(&a);
        for name in names {
            let (sol, _) = d.solve_on(name, &p, Tuning::DEFAULT).unwrap();
            assert_eq!(sol.rows().index, want, "{name}");
        }
        let pmax = Problem::plain_row_maxima(&a);
        let want = brute_row_maxima(&a);
        for b in d.eligible(&pmax) {
            let (sol, _) = d.solve_on(b.name(), &pmax, Tuning::DEFAULT).unwrap();
            assert_eq!(sol.rows().index, want, "{}", b.name());
        }
    }

    #[test]
    fn rightmost_tie_rule_flows_through_dispatch() {
        let a = Dense::filled(5, 7, 1i64);
        let d = Dispatcher::<i64>::with_default_backends();
        for p in [
            Problem::row_minima(&a).with_tie(Tie::Right),
            Problem::plain_row_minima(&a).with_tie(Tie::Right),
        ] {
            for b in d.eligible(&p) {
                let (sol, _) = d.solve_on(b.name(), &p, Tuning::DEFAULT).unwrap();
                assert_eq!(sol.rows().index, vec![6; 5], "{}", b.name());
            }
        }
    }

    #[test]
    fn phases_sum_stays_within_the_total() {
        let d = Dispatcher::<i64>::with_default_backends();
        let a = monge_fixture(64, 64, 10);
        let (_, tel) = d.solve(&Problem::row_minima(&a));
        assert!(!tel.phases.is_empty());
        assert!(tel.phase_nanos() <= tel.total_nanos);
    }
}
