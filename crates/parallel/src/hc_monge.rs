//! Row minima / maxima of Monge arrays on the simulated hypercube —
//! Theorem 3.2 / Lemma 3.1.
//!
//! ## Machine model (§3)
//!
//! Input arrays are [`VectorArray`]s: `a[i,j] = g(v[i], w[j])`, with
//! `v[i]` and `w[i]` initially in node `i`'s local memory. Everything a
//! node computes, it computes from data that physically reached it
//! through exchange steps.
//!
//! ## Structure
//!
//! The divide & conquer over rows is executed **level by level**: all
//! blocks (middle row + candidate column interval) of one recursion level
//! are processed simultaneously by whole-network collectives, in the
//! spirit of Lemma 3.1's proof:
//!
//! 1. the level's candidates are laid out consecutively across the
//!    machine (arbitrarily overlapping block intervals cost nothing; a
//!    level wider than the machine runs in sweeps);
//! 2. every candidate fetches its `w[col]` and `v[row]` operands through
//!    **sort-based gathers** whose inner concentrate/distribute passes
//!    are exactly Lemma 3.1's isotone routes (\[LLS89\]);
//! 3. a **segmented minimum scan** produces every block's optimum.
//!
//! Measured time is `O(lg² n)`-ish (`lg n` levels × sort-dominated
//! collectives); the paper's `O(lg n lg lg n)` uses merge-based data
//! placement plus a row-sampling acceleration on top of the same
//! primitives (see DESIGN.md §3). The trace's CCC/shuffle-exchange
//! prices stay within a small constant of the hypercube steps
//! (Tables 1.1–1.2's "hypercube, etc." rows).

use crate::vector_array::VectorArray;
use monge_core::value::Value;
use monge_hypercube::ops::segmented_scan_inclusive;
use monge_hypercube::topology::EmulationCost;
use monge_hypercube::{Hypercube, NetMetrics, Reg};

/// A `(value, index)` hypercube word ordered lexicographically, plus a
/// general-purpose integer lane.
#[derive(Clone, Copy, Debug, PartialEq, PartialOrd)]
pub struct HW<T> {
    /// Compared value.
    pub v: T,
    /// Tie-breaking / addressing lane.
    pub ix: i64,
}

impl<T: Value> HW<T> {
    /// Packs a value and an index.
    pub fn new(v: T, ix: usize) -> Self {
        Self { v, ix: ix as i64 }
    }
    /// The `∞` word (loses every minimum).
    pub fn inf() -> Self {
        Self {
            v: T::INFINITY,
            ix: i64::MAX,
        }
    }
}

/// One block of a divide & conquer level: find the leftmost minimum of
/// `a[row, lo..hi)`.
#[derive(Clone, Copy, Debug)]
pub struct Block {
    /// The (middle) row to search.
    pub row: usize,
    /// Candidate interval start (inclusive).
    pub lo: usize,
    /// Candidate interval end (exclusive).
    pub hi: usize,
}

/// Result of a hypercube engine run.
#[derive(Clone, Debug)]
pub struct HcRun {
    /// Per-row argmin/argmax (leftmost).
    pub index: Vec<usize>,
    /// Network metrics (exchange/local steps, messages, dimension trace).
    pub metrics: NetMetrics,
    /// The same execution priced on CCC and shuffle-exchange networks.
    pub emulation: EmulationCost,
}

/// The executor state: machine + resident input registers.
pub(crate) struct HcEngine<T: Value> {
    pub hc: Hypercube<HW<T>>,
    rv: Reg,
    rw: Reg,
    // Scratch registers reused across levels.
    valid: Reg,
    rank: Reg,
    dest: Reg,
    pv: Reg,
    pw: Reg,
    flag: Reg,
    cand: Reg,
    /// When `Some(n)`, tie indices are mirrored (rightmost-minimum mode).
    pub mirror: Option<usize>,
}

impl<T: Value> HcEngine<T> {
    /// Builds a machine large enough for one level's candidates
    /// (`≤ 2·max(m, n)` for the tiling recursions) and loads `v`, `w`.
    pub fn new(v: &[T], w: &[T]) -> Self {
        let need = (2 * v.len().max(w.len())).max(2);
        let dim = usize::BITS as usize - (need - 1).leading_zeros() as usize;
        let mut hc = Hypercube::new(dim);
        let rv = hc.alloc_reg(HW::inf());
        let rw = hc.alloc_reg(HW::inf());
        let valid = hc.alloc_reg(HW::inf());
        let rank = hc.alloc_reg(HW::inf());
        let dest = hc.alloc_reg(HW::inf());
        let pv = hc.alloc_reg(HW::inf());
        let pw = hc.alloc_reg(HW::inf());
        let flag = hc.alloc_reg(HW::inf());
        let cand = hc.alloc_reg(HW::inf());
        let vw: Vec<HW<T>> = v.iter().map(|&x| HW::new(x, 0)).collect();
        let ww: Vec<HW<T>> = w.iter().map(|&x| HW::new(x, 0)).collect();
        hc.load(rv, &vw);
        hc.load(rw, &ww);
        Self {
            hc,
            rv,
            rw,
            valid,
            rank,
            dest,
            pv,
            pw,
            flag,
            cand,
            mirror: None,
        }
    }

    fn one() -> HW<T> {
        HW { v: T::ZERO, ix: 1 }
    }
    fn zero() -> HW<T> {
        HW { v: T::ZERO, ix: 0 }
    }

    #[inline]
    fn decode(&self, enc: usize) -> usize {
        self.mirror.map_or(enc, |n| n - 1 - enc)
    }

    /// Solves every block of one level. Candidates are laid out
    /// consecutively across the machine (so arbitrarily overlapping block
    /// intervals cost nothing extra); each candidate fetches its `w[col]`
    /// and `v[row]` operands through sort-based gathers (whose inner
    /// concentrate/distribute passes are exactly Lemma 3.1's isotone
    /// routes), then a segmented minimum scan produces every block's
    /// optimum. Levels whose total candidate count exceeds the machine
    /// run in several sweeps. The `_monotone` hint is kept for API
    /// stability (the gather-based executor no longer needs it).
    pub fn level_minima<G: Fn(T, T) -> T + Sync>(
        &mut self,
        g: &G,
        blocks: &[Block],
        _monotone: bool,
    ) -> Vec<(usize, T)> {
        let n = self.hc.nodes();
        let mut results = vec![(0usize, T::INFINITY); blocks.len()];
        if blocks.is_empty() {
            return results;
        }
        let mut sweep: Vec<usize> = Vec::new();
        let mut used = 0usize;
        for b in 0..=blocks.len() {
            let w = if b < blocks.len() {
                blocks[b].hi - blocks[b].lo
            } else {
                0
            };
            if (b == blocks.len() || used + w > n) && !sweep.is_empty() {
                self.run_sweep(g, blocks, &sweep, &mut results);
                sweep.clear();
                used = 0;
            }
            if b < blocks.len() {
                assert!(w <= n, "single block wider than the machine");
                sweep.push(b);
                used += w;
            }
        }
        results
    }

    fn run_sweep<G: Fn(T, T) -> T + Sync>(
        &mut self,
        g: &G,
        blocks: &[Block],
        sweep: &[usize],
        results: &mut [(usize, T)],
    ) {
        let n = self.hc.nodes();
        // Reclaim the primitives' scratch registers when the sweep ends.
        let mark = self.hc.reg_mark();
        // Host-side control staging (the per-level processor-allocation
        // bookkeeping; its in-machine cost is a constant number of extra
        // scans and does not change the asymptotics — see module docs).
        let mut validv = vec![Self::zero(); n];
        let mut vkeyv = vec![HW::inf(); n];
        let mut wkeyv = vec![HW::inf(); n];
        let mut colv = vec![Self::zero(); n];
        let mut flagv = vec![Self::zero(); n];
        let mut ends: Vec<(usize, usize)> = Vec::with_capacity(sweep.len());
        let mut t = 0usize;
        for &b in sweep {
            let blk = &blocks[b];
            flagv[t] = Self::one();
            for c in blk.lo..blk.hi {
                validv[t] = Self::one();
                vkeyv[t] = HW {
                    v: T::ZERO,
                    ix: blk.row as i64,
                };
                wkeyv[t] = HW {
                    v: T::ZERO,
                    ix: c as i64,
                };
                colv[t] = HW {
                    v: T::ZERO,
                    ix: c as i64,
                };
                t += 1;
            }
            ends.push((b, t - 1));
        }
        if t < n {
            flagv[t] = Self::one();
        }
        self.hc.load(self.valid, &validv);
        self.hc.load(self.rank, &vkeyv);
        self.hc.load(self.dest, &wkeyv);
        self.hc.load(self.flag, &flagv);
        self.hc.load(self.cand, &colv);

        // Fetch w[col] and v[row] for every candidate.
        let make_key = |k: usize| HW {
            v: T::ZERO,
            ix: k as i64,
        };
        monge_hypercube::ops::sorted_gather(
            &mut self.hc,
            self.valid,
            Self::one(),
            Self::zero(),
            self.dest,
            |c| c.ix as usize,
            make_key,
            self.rw,
            self.pw,
            HW::inf(),
        );
        self.hc.load(self.valid, &validv);
        monge_hypercube::ops::sorted_gather(
            &mut self.hc,
            self.valid,
            Self::one(),
            Self::zero(),
            self.rank,
            |c| c.ix as usize,
            make_key,
            self.rv,
            self.pv,
            HW::inf(),
        );
        self.hc.load(self.valid, &validv);

        // Evaluate candidates; invalid nodes emit ∞.
        let (pv, pw, valid, cand) = (self.pv, self.pw, self.valid, self.cand);
        let one = Self::one();
        let mirror = self.mirror;
        self.hc.local(|_, own| {
            if own.get(valid) == one {
                let vval = own.get(pv).v;
                let wval = own.get(pw).v;
                let col = own.get(cand).ix as usize;
                let enc = mirror.map_or(col, |nn| nn - 1 - col);
                own.set(cand, HW::new(g(vval, wval), enc));
            } else {
                own.set(cand, HW::inf());
            }
        });

        // Segmented minimum: each block's optimum lands on its last node.
        segmented_scan_inclusive(&mut self.hc, self.cand, self.flag, Self::one(), |a, b| {
            if b < a {
                b
            } else {
                a
            }
        });

        for &(b, last) in &ends {
            let w = self.hc.peek(last, self.cand);
            results[b] = (self.decode(w.ix as usize), w.v);
        }
        self.hc.reg_reset(mark);
    }
}

/// Row minima of a Monge [`VectorArray`] on the hypercube.
pub fn hc_row_minima<T: Value, G: Fn(T, T) -> T + Sync>(a: &VectorArray<T, G>) -> HcRun {
    run(a, None)
}

/// Row maxima of a Monge [`VectorArray`] on the hypercube (Theorem 3.2),
/// leftmost tie-break, via the reverse-and-negate reduction.
pub fn hc_row_maxima<T: Value, G: Fn(T, T) -> T + Sync>(a: &VectorArray<T, G>) -> HcRun {
    let n = a.w.len();
    // Reflected, negated array is Monge with a[i,j'] = -g(v[i], w[n-1-j']).
    let w_rev: Vec<T> = a.w.iter().rev().copied().collect();
    let gref = &a.g;
    let t = VectorArray::new(a.v.clone(), w_rev, move |x, y| gref(x, y).neg());
    let mut out = run(&t, Some(n));
    for j in out.index.iter_mut() {
        *j = n - 1 - *j;
    }
    out
}

fn run<T: Value, G: Fn(T, T) -> T + Sync>(a: &VectorArray<T, G>, mirror: Option<usize>) -> HcRun {
    let (m, n) = (a.v.len(), a.w.len());
    let mut eng = HcEngine::new(&a.v, &a.w);
    eng.mirror = mirror;
    let mut index = vec![0usize; m];

    // Level-by-level recursive halving: active segments carry their
    // candidate column intervals.
    let mut segs: Vec<(usize, usize, usize, usize)> = vec![(0, m, 0, n)];
    while !segs.is_empty() {
        monge_core::guard::checkpoint();
        let blocks: Vec<Block> = segs
            .iter()
            .map(|&(r0, r1, c0, c1)| Block {
                row: r0 + (r1 - r0) / 2,
                lo: c0,
                hi: c1,
            })
            .collect();
        // Blocks are generated with rows and intervals co-sorted, so the
        // v-distribution is an isotone route in both the minima and the
        // mirrored maxima runs.
        let minima = eng.level_minima(&a.g, &blocks, true);
        let mut next = Vec::with_capacity(segs.len() * 2);
        for (k, &(r0, r1, c0, c1)) in segs.iter().enumerate() {
            let mid = r0 + (r1 - r0) / 2;
            let (j, _) = minima[k];
            index[mid] = j;
            if mid > r0 {
                next.push((r0, mid, c0, j + 1));
            }
            if mid + 1 < r1 {
                next.push((mid + 1, r1, j, c1));
            }
        }
        segs = next;
    }

    let metrics = eng.hc.metrics().clone();
    let emulation = EmulationCost::price(&metrics, eng.hc.dim());
    HcRun {
        index,
        metrics,
        emulation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use monge_core::monge::{brute_row_maxima, brute_row_minima, is_monge};
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    /// Random Monge VectorArray: g(v,w) = |v - w| over sorted vectors.
    fn random_transport(m: usize, n: usize, seed: u64) -> VectorArray<i64, fn(i64, i64) -> i64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut v: Vec<i64> = (0..m).map(|_| rng.random_range(0..10_000)).collect();
        let mut w: Vec<i64> = (0..n).map(|_| rng.random_range(0..10_000)).collect();
        v.sort_unstable();
        w.sort_unstable();
        VectorArray::new(v, w, |x, y| (x - y).abs())
    }

    #[test]
    fn minima_matches_brute() {
        for &(m, n, seed) in &[(1usize, 1usize, 1u64), (8, 8, 2), (13, 29, 3), (32, 7, 4)] {
            let a = random_transport(m, n, seed);
            assert!(is_monge(&a));
            let run = hc_row_minima(&a);
            assert_eq!(run.index, brute_row_minima(&a), "{m}x{n}");
        }
    }

    #[test]
    fn maxima_matches_brute() {
        for &(m, n, seed) in &[(6usize, 6usize, 5u64), (16, 16, 6), (9, 24, 7)] {
            let a = random_transport(m, n, seed);
            let run = hc_row_maxima(&a);
            assert_eq!(run.index, brute_row_maxima(&a), "{m}x{n}");
        }
    }

    #[test]
    fn tie_break_is_leftmost() {
        let a = VectorArray::new(vec![0i64; 8], vec![0i64; 8], |_, _| 5i64);
        assert_eq!(hc_row_minima(&a).index, vec![0; 8]);
        assert_eq!(hc_row_maxima(&a).index, vec![0; 8]);
    }

    #[test]
    fn trace_is_emulable_at_constant_overhead() {
        // The executor's collectives are ascending/descending dimension
        // runs except for the inter-stage jumps of bitonic sorting, whose
        // cyclic realignment the emulator prices explicitly; the total
        // CCC / shuffle-exchange overhead must stay a small constant.
        let a = random_transport(16, 16, 8);
        let run = hc_row_minima(&a);
        assert!(run.emulation.se_steps <= 3 * run.emulation.hypercube_steps);
        assert!(run.emulation.ccc_steps <= 3 * run.emulation.hypercube_steps);
    }

    #[test]
    fn steps_are_polylogarithmic() {
        let a64 = random_transport(64, 64, 9);
        let a256 = random_transport(256, 256, 10);
        let s64 = hc_row_minima(&a64).metrics.steps();
        let s256 = hc_row_minima(&a256).metrics.steps();
        // lg² growth: going 64 -> 256 multiplies lg² by (8/6)² ≈ 1.8;
        // anything at or under 3x rules out linear behaviour (4x).
        assert!(s256 <= 3 * s64, "steps grew too fast: {s64} -> {s256}");
    }
}
