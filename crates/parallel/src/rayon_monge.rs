//! Multithreaded row minima / maxima of (inverse-)Monge arrays.
//!
//! The engine is the recursive-halving divide & conquer the paper's PRAM
//! algorithms are built from: find the middle row's optimum, split the
//! remaining rows into two independent subproblems with nested column
//! intervals (total monotonicity), and recurse in parallel. The interval
//! scan of a middle row is itself a parallel reduction when wide.
//!
//! There is exactly **one** recursion here, parameterized by a
//! [`Tie`] policy. The three non-canonical (structure, objective)
//! combinations reach it through the §1.2 lowering implemented once in
//! [`monge_core::problem::lower_rows`]: negate and/or reverse columns,
//! flip the tie rule when the columns were mirrored, and map indices
//! back. No hand-written rightmost twin survives.
//!
//! All interval scans go through the batched evaluation layer
//! ([`monge_core::eval`]): each sequential leaf fills a reusable scratch
//! buffer with one [`Array2d::fill_row`] call and argmins over the
//! slice; the wide-interval path splits the interval into
//! [`Tuning::seq_scan`]-sized chunks, scans each chunk the same way,
//! and combines candidates with an order-insensitive lexicographic
//! reduction ([`monge_core::tiebreak::lex_min`]).
//!
//! Grain sizes come from the [`Tuning`] value threaded through every
//! call (the plain entry points seed it from the environment; the
//! `*_with` variants accept an explicit handle, e.g. one produced by
//! [`crate::runtime::calibrate`]). Forks go through
//! [`crate::runtime::join_tracked`] so dispatched solves can report
//! task fan-out; scratch buffers at fork boundaries are checked out of
//! the worker thread's arena ([`monge_core::scratch`]), so steady-state
//! searches allocate only their output vectors.
//!
//! Work is `O((m + n) lg m)`, span `O(lg m lg n)`, so wall-clock scales
//! with cores — the rayon stand-in for the paper's `n`-processor bounds.

use crate::runtime;
use crate::tuning::Tuning;
use monge_core::array2d::Array2d;
use monge_core::eval;
use monge_core::problem::{lower_rows, mirror_indices, Objective, Structure};
use monge_core::scratch::with_scratch;
use monge_core::smawk::RowExtrema;
use monge_core::tiebreak::{lex_min, Tie};
use monge_core::value::Value;
use rayon::prelude::*;

/// Sequential interval scan honoring the tie policy.
#[inline]
fn interval_scan_seq<T: Value, A: Array2d<T>>(
    a: &A,
    row: usize,
    lo: usize,
    hi: usize,
    scratch: &mut Vec<T>,
    tie: Tie,
) -> (usize, T) {
    match tie {
        Tie::Left => eval::interval_argmin(a, row, lo, hi, scratch),
        Tie::Right => eval::interval_argmin_rightmost(a, row, lo, hi, scratch),
    }
}

/// Tie-preferred minimum of `a[row, lo..hi)` with its value; scans in
/// parallel chunks when the interval is wider than the tuning cutoff.
pub(crate) fn interval_argmin_tie<T: Value, A: Array2d<T>>(
    a: &A,
    row: usize,
    lo: usize,
    hi: usize,
    scratch: &mut Vec<T>,
    t: Tuning,
    tie: Tie,
) -> (usize, T) {
    debug_assert!(lo < hi);
    let chunk = t.seq_scan.max(1);
    if hi - lo <= chunk {
        return interval_scan_seq(a, row, lo, hi, scratch, tie);
    }
    let n_chunks = (hi - lo).div_ceil(chunk);
    runtime::add_tasks(n_chunks as u64);
    (0..n_chunks)
        .into_par_iter()
        .map(|ci| {
            let c_lo = lo + ci * chunk;
            let c_hi = (c_lo + chunk).min(hi);
            with_scratch(|buf: &mut Vec<T>| interval_scan_seq(a, row, c_lo, c_hi, buf, tie))
        })
        .reduce_with(|x, y| lex_min(x, y, tie))
        .expect("non-empty interval")
}

/// Leftmost minimum of `a[row, lo..hi)` with its value — the shape the
/// staircase and tube engines consume.
pub(crate) fn interval_argmin<T: Value, A: Array2d<T>>(
    a: &A,
    row: usize,
    lo: usize,
    hi: usize,
    scratch: &mut Vec<T>,
    t: Tuning,
) -> (usize, T) {
    interval_argmin_tie(a, row, lo, hi, scratch, t, Tie::Left)
}

#[allow(clippy::too_many_arguments)]
fn rec<T: Value, A: Array2d<T>>(
    a: &A,
    r0: usize,
    r1: usize,
    c0: usize,
    c1: usize,
    out: &mut [usize],
    scratch: &mut Vec<T>,
    t: Tuning,
    tie: Tie,
) {
    monge_core::guard::checkpoint();
    if r0 >= r1 {
        return;
    }
    let mid = r0 + (r1 - r0) / 2;
    let (best, _) = interval_argmin_tie(a, mid, c0, c1, scratch, t, tie);
    out[mid - r0] = best;
    let (top, rest) = out.split_at_mut(mid - r0);
    let bot = &mut rest[1..];
    if r1 - r0 <= t.seq_rows.max(1) {
        rec_seq(a, r0, mid, c0, best + 1, top, scratch, t, tie);
        rec_seq(a, mid + 1, r1, best, c1, bot, scratch, t, tie);
        return;
    }
    runtime::join_tracked(
        || with_scratch(|s: &mut Vec<T>| rec(a, r0, mid, c0, best + 1, top, s, t, tie)),
        || with_scratch(|s: &mut Vec<T>| rec(a, mid + 1, r1, best, c1, bot, s, t, tie)),
    );
}

#[allow(clippy::too_many_arguments)]
fn rec_seq<T: Value, A: Array2d<T>>(
    a: &A,
    r0: usize,
    r1: usize,
    c0: usize,
    c1: usize,
    out: &mut [usize],
    scratch: &mut Vec<T>,
    t: Tuning,
    tie: Tie,
) {
    monge_core::guard::checkpoint();
    if r0 >= r1 {
        return;
    }
    let mid = r0 + (r1 - r0) / 2;
    let (best, _) = interval_argmin_tie(a, mid, c0, c1, scratch, t, tie);
    out[mid - r0] = best;
    let (top, rest) = out.split_at_mut(mid - r0);
    let bot = &mut rest[1..];
    rec_seq(a, r0, mid, c0, best + 1, top, scratch, t, tie);
    rec_seq(a, mid + 1, r1, best, c1, bot, scratch, t, tie);
}

/// Tie-preferred row minima of a totally monotone array — the raw
/// engine the dispatch backends and the lowering wrappers share.
pub(crate) fn par_rowmin_with_tie<T: Value, A: Array2d<T>>(
    a: &A,
    tie: Tie,
    t: Tuning,
) -> Vec<usize> {
    let (m, n) = (a.rows(), a.cols());
    assert!(n > 0);
    let mut out = vec![0usize; m];
    with_scratch(|s: &mut Vec<T>| rec(a, 0, m, 0, n, &mut out, s, t, tie));
    out
}

/// Lowers a (structure, objective) pair onto the single leftmost-minima
/// recursion per §1.2 and maps the answer back to original columns.
fn par_extrema_lowered<T: Value, A: Array2d<T>>(
    a: &A,
    structure: Structure,
    objective: Objective,
    t: Tuning,
) -> Vec<usize> {
    let (mut index, mirror) = lower_rows(a, structure, objective, Tie::Left, |arr, tie| {
        par_rowmin_with_tie(&arr, tie, t)
    });
    if let Some(n) = mirror {
        mirror_indices(&mut index, n);
    }
    index
}

/// Core parallel routine: leftmost row minima of a totally monotone
/// (minima) array by parallel divide & conquer, with explicit tuning.
pub fn par_row_minima_totally_monotone_with<T: Value, A: Array2d<T>>(
    a: &A,
    t: Tuning,
) -> Vec<usize> {
    par_rowmin_with_tie(a, Tie::Left, t)
}

/// [`par_row_minima_totally_monotone_with`] with environment-seeded
/// tuning.
pub fn par_row_minima_totally_monotone<T: Value, A: Array2d<T>>(a: &A) -> Vec<usize> {
    par_row_minima_totally_monotone_with(a, Tuning::from_env())
}

/// Parallel leftmost row minima of a Monge array, with explicit tuning.
pub fn par_row_minima_monge_with<T: Value, A: Array2d<T>>(a: &A, t: Tuning) -> RowExtrema<T> {
    let index = par_extrema_lowered(a, Structure::Monge, Objective::Minimize, t);
    RowExtrema::from_indices(a, index)
}

/// Parallel leftmost row minima of a Monge array.
pub fn par_row_minima_monge<T: Value, A: Array2d<T>>(a: &A) -> RowExtrema<T> {
    par_row_minima_monge_with(a, Tuning::from_env())
}

/// Parallel leftmost row maxima of an inverse-Monge array, with
/// explicit tuning.
pub fn par_row_maxima_inverse_monge_with<T: Value, A: Array2d<T>>(
    a: &A,
    t: Tuning,
) -> RowExtrema<T> {
    let index = par_extrema_lowered(a, Structure::InverseMonge, Objective::Maximize, t);
    RowExtrema::from_indices(a, index)
}

/// Parallel leftmost row maxima of an inverse-Monge array.
pub fn par_row_maxima_inverse_monge<T: Value, A: Array2d<T>>(a: &A) -> RowExtrema<T> {
    par_row_maxima_inverse_monge_with(a, Tuning::from_env())
}

/// Parallel leftmost row maxima of a Monge array (Table 1.1's problem),
/// with explicit tuning.
pub fn par_row_maxima_monge_with<T: Value, A: Array2d<T>>(a: &A, t: Tuning) -> RowExtrema<T> {
    let index = par_extrema_lowered(a, Structure::Monge, Objective::Maximize, t);
    RowExtrema::from_indices(a, index)
}

/// Parallel leftmost row maxima of a Monge array (Table 1.1's problem).
pub fn par_row_maxima_monge<T: Value, A: Array2d<T>>(a: &A) -> RowExtrema<T> {
    par_row_maxima_monge_with(a, Tuning::from_env())
}

/// Parallel leftmost row minima of an inverse-Monge array, with
/// explicit tuning.
pub fn par_row_minima_inverse_monge_with<T: Value, A: Array2d<T>>(
    a: &A,
    t: Tuning,
) -> RowExtrema<T> {
    let index = par_extrema_lowered(a, Structure::InverseMonge, Objective::Minimize, t);
    RowExtrema::from_indices(a, index)
}

/// Parallel leftmost row minima of an inverse-Monge array.
pub fn par_row_minima_inverse_monge<T: Value, A: Array2d<T>>(a: &A) -> RowExtrema<T> {
    par_row_minima_inverse_monge_with(a, Tuning::from_env())
}

#[cfg(test)]
mod tests {
    use super::*;
    use monge_core::array2d::{Dense, Negate};
    use monge_core::generators::{random_monge_dense, ImplicitMonge};
    use monge_core::monge::{brute_row_maxima, brute_row_minima};
    use monge_core::smawk::{row_maxima_monge, row_minima_monge};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matches_smawk_on_random_instances() {
        let mut rng = StdRng::seed_from_u64(40);
        for &(m, n) in &[(1usize, 1usize), (5, 9), (33, 17), (64, 64), (100, 3)] {
            let a = random_monge_dense(m, n, &mut rng);
            assert_eq!(
                par_row_minima_monge(&a).index,
                row_minima_monge(&a).index,
                "{m}x{n}"
            );
            assert_eq!(
                par_row_maxima_monge(&a).index,
                row_maxima_monge(&a).index,
                "{m}x{n} maxima"
            );
        }
    }

    #[test]
    fn inverse_variants_match_brute() {
        let mut rng = StdRng::seed_from_u64(41);
        let a = random_monge_dense(40, 30, &mut rng);
        let b = Negate(&a).to_dense();
        assert_eq!(par_row_maxima_inverse_monge(&b).index, brute_row_maxima(&b));
        assert_eq!(par_row_minima_inverse_monge(&b).index, brute_row_minima(&b));
    }

    #[test]
    fn wide_rows_exercise_parallel_scan() {
        let mut rng = StdRng::seed_from_u64(42);
        // Wider than the seq_scan cutoff to hit the parallel reduction.
        let a = ImplicitMonge::random(4, 5000, 3, &mut rng);
        let got = par_row_minima_monge(&a);
        assert_eq!(got.index, brute_row_minima(&a));
    }

    #[test]
    fn tie_breaking_is_leftmost() {
        let a = Dense::filled(10, 10, 3i64);
        assert_eq!(par_row_minima_monge(&a).index, vec![0; 10]);
        assert_eq!(par_row_maxima_monge(&a).index, vec![0; 10]);
    }

    #[test]
    fn plateau_wider_than_cutoff_stays_leftmost() {
        // Regression for the parallel reduce: on an all-equal (plateau)
        // array every chunk candidate ties, so only an order-insensitive
        // lexicographic combiner returns the leftmost column no matter
        // how rayon associates the reduction. Width must exceed the
        // seq_scan cutoff so the parallel path actually runs.
        let t = Tuning::from_env();
        let n = t.seq_scan * 3 + 17;
        let a = Dense::filled(3, n, 42i64);
        assert_eq!(par_row_minima_monge(&a).index, vec![0; 3]);
        assert_eq!(par_row_maxima_monge(&a).index, vec![0; 3]);
        assert_eq!(par_row_minima_inverse_monge(&a).index, vec![0; 3]);
        assert_eq!(par_row_maxima_inverse_monge(&a).index, vec![0; 3]);
    }

    #[test]
    fn tall_arrays_hit_parallel_rows() {
        let mut rng = StdRng::seed_from_u64(43);
        let a = random_monge_dense(300, 20, &mut rng);
        assert_eq!(par_row_minima_monge(&a).index, brute_row_minima(&a));
    }

    #[test]
    fn forks_register_in_the_task_counter() {
        let t = Tuning {
            seq_rows: 1,
            ..Tuning::DEFAULT
        };
        let a = Dense::tabulate(64, 8, |i, j| {
            let d = i as i64 - j as i64;
            d * d
        });
        let before = runtime::task_count();
        let _ = par_row_minima_monge_with(&a, t);
        assert!(
            runtime::task_count() > before,
            "row-level forks should bump the global task counter"
        );
    }

    #[test]
    fn degenerate_cutoffs_still_agree_with_smawk() {
        // cutoff = 1 forces maximal forking and single-column chunks —
        // the worst case for combiner associativity and tie handling.
        let t = Tuning {
            seq_scan: 1,
            seq_rows: 1,
            ..Tuning::DEFAULT
        };
        let mut rng = StdRng::seed_from_u64(44);
        let a = random_monge_dense(37, 53, &mut rng);
        assert_eq!(
            par_row_minima_monge_with(&a, t).index,
            row_minima_monge(&a).index
        );
        assert_eq!(
            par_row_maxima_monge_with(&a, t).index,
            row_maxima_monge(&a).index
        );
    }
}
