//! # monge-parallel
//!
//! The paper's parallel array-searching algorithms on three engines:
//!
//! * **rayon** (`rayon_*` modules) — real multithreaded execution for
//!   wall-clock measurements: the work/span structure of the paper's
//!   divide-and-conquer algorithms mapped onto a work-stealing pool.
//! * **PRAM** (`pram_*` modules) — the §2 algorithms on the simulated
//!   CRCW/CREW machine of `monge-pram`, with per-step accounting that
//!   reproduces the Table 1.1/1.2/1.3 time–processor rows.
//! * **hypercube** (`hc_*` modules) — the §3 algorithms on the simulated
//!   network of `monge-hypercube`, in the distributed-input model of
//!   Lemma 3.1 (`v[i]`/`w[j]` in node-local memories, no global memory),
//!   priced on CCC and shuffle-exchange via the recorded dimension traces.
//!
//! All engines return exactly the same argmin/argmax vectors as the
//! sequential algorithms in `monge-core` (same leftmost tie-breaking),
//! which the cross-engine test suite enforces.
//!
//! Applications normally do not call the engines directly: the
//! [`dispatch`] module wraps every engine (including `monge-core`'s
//! sequential algorithms) behind one [`dispatch::Backend`] trait and a
//! [`dispatch::Dispatcher`] registry that selects an engine per
//! [`monge_core::problem::Problem`] and instruments each solve with a
//! [`monge_core::problem::Telemetry`].
//!
//! ```
//! use monge_core::array2d::Dense;
//! use monge_core::smawk::row_minima_monge;
//! use monge_parallel::{pram_monge::pram_row_minima_monge, MinPrimitive};
//!
//! let a = Dense::tabulate(64, 64, |i, j| {
//!     let d = i as i64 - j as i64;
//!     d * d // Monge
//! });
//! let seq = row_minima_monge(&a);
//! let sim = pram_row_minima_monge(&a, MinPrimitive::Constant);
//! assert_eq!(seq.index, sim.index);
//! // The paper's Table 1.1 CRCW row: O(lg n) parallel steps.
//! assert!(sim.metrics.steps <= 4 * 7);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ansv_par;
pub mod autotune;
pub mod batch;
pub mod dispatch;
pub mod guarded;
pub mod hc_monge;
pub mod hc_staircase;
pub mod hc_tube;
pub mod health;
pub mod pram_ansv;
pub mod pram_monge;
pub mod pram_staircase;
pub mod pram_tube;
pub mod queryindex;
pub mod rayon_monge;
pub mod rayon_staircase;
pub mod rayon_tube;
pub mod runtime;
pub mod tuning;
pub mod vector_array;

pub use autotune::{AutotuneKey, AutotuneMode, Autotuner, Winner};
pub use batch::{BatchPolicy, BatchReport, SolverService, SubmitError};
pub use dispatch::{
    Backend, Capabilities, Dispatcher, HypercubeBackend, PramBackend, RayonBackend,
    SequentialBackend,
};
pub use guarded::BruteForceBackend;
pub use health::{
    Admission, Clock, HealthConfig, HealthRegistry, MonotonicClock, Observation, VirtualClock,
};
pub use pram_monge::MinPrimitive;
pub use queryindex::QUERYINDEX;
pub use runtime::calibrate;
pub use tuning::Tuning;
pub use vector_array::VectorArray;
