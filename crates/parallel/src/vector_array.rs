//! Rank-structured arrays for distributed-memory engines.
//!
//! §3's machine model: "we assume there are two vectors `v[1], …, v[m]`
//! and `w[1], …, w[n]` (where initially the `i`-th hypercube processor's
//! local memory holds `v[i]` and `w[i]`), such that a processor needs to
//! know both `v[i]` and `w[j]` before it can compute `a[i,j]` in constant
//! time." [`VectorArray`] is that model: an array whose entries are a
//! function of one row datum and one column datum.

use monge_core::array2d::Array2d;
use monge_core::value::Value;

/// An `m × n` array `a[i,j] = g(v[i], w[j])`.
///
/// This is both a perfectly ordinary [`Array2d`] (for the shared-memory
/// engines) and the *only* array form the hypercube engines accept,
/// because it pins down what data must move through the network.
#[derive(Clone, Debug)]
pub struct VectorArray<T, G> {
    /// Per-row data `v[i]`.
    pub v: Vec<T>,
    /// Per-column data `w[j]`.
    pub w: Vec<T>,
    /// The constant-time entry function `g`.
    pub g: G,
}

impl<T: Value, G: Fn(T, T) -> T + Sync> VectorArray<T, G> {
    /// Wraps row data, column data and an entry function.
    pub fn new(v: Vec<T>, w: Vec<T>, g: G) -> Self {
        assert!(!v.is_empty() && !w.is_empty());
        Self { v, w, g }
    }
}

impl<T: Value, G: Fn(T, T) -> T + Sync> Array2d<T> for VectorArray<T, G> {
    fn rows(&self) -> usize {
        self.v.len()
    }
    fn cols(&self) -> usize {
        self.w.len()
    }
    #[inline]
    fn entry(&self, i: usize, j: usize) -> T {
        (self.g)(self.v[i], self.w[j])
    }
    fn fill_row(&self, i: usize, cols: std::ops::Range<usize>, out: &mut [T]) {
        let vi = self.v[i];
        for (slot, &wj) in out.iter_mut().zip(&self.w[cols]) {
            *slot = (self.g)(vi, wj);
        }
    }
    fn prefers_streaming(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use monge_core::monge::is_monge;

    #[test]
    fn sorted_difference_family_is_monge() {
        // |v_i - w_j| over sorted vectors: Monge's 1781 example.
        let v: Vec<i64> = vec![1, 4, 9, 16];
        let w: Vec<i64> = vec![0, 2, 8, 20];
        let a = VectorArray::new(v, w, |x: i64, y: i64| (x - y).abs());
        assert!(is_monge(&a));
        assert_eq!(a.entry(2, 1), 7);
        assert_eq!(a.rows(), 4);
        assert_eq!(a.cols(), 4);
    }

    #[test]
    fn fill_row_matches_entry_loop() {
        let v: Vec<i64> = vec![3, 1, 7];
        let w: Vec<i64> = vec![2, 5, 0, 9, 4];
        let a = VectorArray::new(v, w, |x: i64, y: i64| (x - y).abs() + x);
        let mut buf = vec![0i64; 3];
        for i in 0..3 {
            a.fill_row(i, 1..4, &mut buf);
            for (t, j) in (1..4).enumerate() {
                assert_eq!(buf[t], a.entry(i, j));
            }
        }
    }
}
