//! Explicit tuning handles for the parallel engines.
//!
//! Every divide & conquer engine in this crate bottoms out into a
//! sequential scan once the subproblem is small enough that spawning
//! costs more than it saves. Those cutoffs used to be process-global
//! (`OnceLock`-cached environment lookups); they are now carried in a
//! [`Tuning`] value that callers pass down explicitly, so two
//! concurrent searches can run with different grain sizes and tests
//! can pin degenerate cutoffs without mutating process state.
//!
//! | field | env var | default | meaning |
//! |---|---|---|---|
//! | [`Tuning::seq_scan`] | `MONGE_SEQ_SCAN` | 2048 | column intervals at most this wide are scanned sequentially |
//! | [`Tuning::seq_rows`] | `MONGE_SEQ_ROWS` | 64 | row ranges at most this tall stay in the sequential D&C |
//! | [`Tuning::tube_seq_planes`] | `MONGE_TUBE_SEQ_PLANES` | 8 | tube problems with at most this many planes loop sequentially |
//! | [`Tuning::pram_base_rows`] | `MONGE_PRAM_BASE_ROWS` | 4 | PRAM staircase base-case height |
//! | [`Tuning::batch_chunks_per_thread`] | `MONGE_BATCH_CHUNKS` | 4 | Merge-Path chunks per pool thread in a batched solve |
//! | [`Tuning::kernel`] | `MONGE_KERNEL` | `auto` | slice-scan kernel choice (`auto` / `scalar` / `simd`) |
//!
//! Defaults were chosen with `cargo bench -p monge-bench --bench
//! substrates` (row-minima group) on an 8-core x86-64 host: below ~2k
//! elements a rayon task's spawn/steal overhead (~1–2 µs) exceeds the
//! scan itself, and below ~64 rows the per-level join overhead of the
//! row recursion dominates. The `rowmin_json` binary in `crates/bench`
//! regenerates the supporting numbers (`bench-results/parallel.json`
//! holds the thread-sweep curves).
//!
//! ## Precedence
//!
//! From strongest to weakest:
//!
//! 1. **Per-call values** — whatever `Tuning` the caller passes to a
//!    `*_with` entry point (struct-update syntax composes well:
//!    `Tuning { seq_scan: 64, ..base }`).
//! 2. **Environment variables** — [`Tuning::from_env`] overlays the
//!    `MONGE_*` variables on the built-in defaults,
//!    [`crate::runtime::calibrate`] overlays them on its measured
//!    values, and the autotuner re-overlays them on every cached
//!    winner it serves, so a deployment-level pin always beats both
//!    measurement layers.
//! 3. **Autotune cache** — the persistent winner table of
//!    [`crate::autotune`]: a `(backend, Tuning)` measured once per
//!    [`crate::autotune::AutotuneKey`] by racing the candidate set on
//!    a probe of the real problem, remembered across processes.
//! 4. **Calibration** — [`crate::runtime::calibrate`] measures the
//!    per-entry evaluation cost of the array at hand and sizes chunks
//!    for ~20 µs of work per rayon task. The fallback whenever the
//!    autotuner has nothing for a call (disabled, read-only miss, or
//!    mid-measurement on another thread).
//! 5. **Built-in defaults** — [`Tuning::DEFAULT`].
//!
//! Which layer decided a dispatched solve is recorded in
//! [`monge_core::problem::Telemetry::provenance`].
//!
//! Malformed or zero-valued environment variables are ignored (a zero
//! cutoff would recurse forever); the engines additionally clamp every
//! cutoff to at least 1 at the point of use, so hand-built `Tuning`
//! values cannot cause unbounded recursion either. An unparsable
//! `MONGE_KERNEL` likewise falls back to the current value.
//!
//! The [`Tuning::kernel`] field is a *requested selection*, not a
//! per-call switch: the dispatcher applies it to the process-global
//! kernel state ([`monge_core::kernel::select`]) on entry, because the
//! slice scans deep inside `monge-core` have no `Tuning` in scope (see
//! the precedence notes in [`monge_core::kernel`]).

use monge_core::kernel::Kernel;

/// Grain-size cutoffs (and kernel selection) for the parallel
/// engines, passed by value.
///
/// `Tuning` is `Copy` and cheap to thread through recursions; there is
/// deliberately no global cache, so the same process can run different
/// searches with different grains concurrently.
///
/// ```
/// use monge_parallel::tuning::Tuning;
///
/// let base = Tuning::from_env();          // env-seeded defaults
/// let fine = Tuning { seq_scan: 64, ..base }; // per-call override
/// assert_eq!(fine.seq_rows, base.seq_rows);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Tuning {
    /// Column intervals at most this wide are scanned sequentially
    /// instead of being split across rayon tasks.
    pub seq_scan: usize,
    /// Row ranges at most this tall are solved by the sequential
    /// divide & conquer instead of forking.
    pub seq_rows: usize,
    /// Tube problems with at most this many planes (rows of `D`) run
    /// the per-plane loop sequentially.
    pub tube_seq_planes: usize,
    /// Row ranges at most this tall are handled directly by a PRAM
    /// interval-minimum step instead of recursing.
    pub pram_base_rows: usize,
    /// How many equal-cost Merge-Path chunks per rayon pool thread a
    /// batched solve splits a group's fused work list into
    /// ([`crate::batch`]). More chunks → finer load balancing and more
    /// frequent cancellation checkpoints, at slightly more scheduling
    /// overhead; 1 degenerates to one chunk per thread.
    pub batch_chunks_per_thread: usize,
    /// Which slice-scan kernel the engines should use
    /// ([`monge_core::kernel::Kernel`]): `Auto` (the default) lets the
    /// runtime pick SIMD whenever it is compiled in and supported,
    /// `Scalar`/`Simd` pin the choice. Applied process-globally by the
    /// dispatcher and by [`crate::runtime::calibrate`].
    pub kernel: Kernel,
}

impl Tuning {
    /// The built-in defaults (see the module docs for provenance).
    pub const DEFAULT: Tuning = Tuning {
        seq_scan: 2048,
        seq_rows: 64,
        tube_seq_planes: 8,
        pram_base_rows: 4,
        batch_chunks_per_thread: 4,
        kernel: Kernel::Auto,
    };

    /// Defaults overlaid with any valid `MONGE_*` environment
    /// variables. Parses the environment on every call — entry points
    /// call this once at the top and pass the value down, so there is
    /// no per-element cost and no process-global cache to fight in
    /// tests.
    pub fn from_env() -> Tuning {
        Tuning::DEFAULT.env_overlay()
    }

    /// Overlay any valid `MONGE_*` environment variables on `self`.
    /// Used both by [`Tuning::from_env`] (on the defaults) and by
    /// [`crate::runtime::calibrate`] (on measured values), which is
    /// what gives the environment precedence over calibration.
    pub fn env_overlay(self) -> Tuning {
        Tuning {
            seq_scan: env_usize("MONGE_SEQ_SCAN").unwrap_or(self.seq_scan),
            seq_rows: env_usize("MONGE_SEQ_ROWS").unwrap_or(self.seq_rows),
            tube_seq_planes: env_usize("MONGE_TUBE_SEQ_PLANES").unwrap_or(self.tube_seq_planes),
            pram_base_rows: env_usize("MONGE_PRAM_BASE_ROWS").unwrap_or(self.pram_base_rows),
            batch_chunks_per_thread: env_usize("MONGE_BATCH_CHUNKS")
                .unwrap_or(self.batch_chunks_per_thread),
            kernel: Kernel::from_env().unwrap_or(self.kernel),
        }
    }

    /// Applies this tuning's [`Tuning::kernel`] request to the
    /// process-global kernel selection. A no-op for [`Kernel::Auto`],
    /// which is also the global default — so callers that never touch
    /// the knob never mutate process state.
    pub fn apply_kernel(&self) {
        if self.kernel != Kernel::Auto {
            monge_core::kernel::select(self.kernel);
        }
    }
}

impl Default for Tuning {
    fn default() -> Self {
        Tuning::DEFAULT
    }
}

/// Positive integer from the environment; `None` on unset, malformed,
/// or zero (a zero cutoff would recurse forever).
fn env_usize(var: &str) -> Option<usize> {
    std::env::var(var)
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&v| v > 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_positive() {
        let t = Tuning::DEFAULT;
        assert!(t.seq_scan > 0);
        assert!(t.seq_rows > 0);
        assert!(t.tube_seq_planes > 0);
        assert!(t.pram_base_rows > 0);
        assert!(t.batch_chunks_per_thread > 0);
    }

    #[test]
    fn struct_update_overrides_one_field() {
        let base = Tuning::DEFAULT;
        let fine = Tuning {
            seq_scan: 1,
            ..base
        };
        assert_eq!(fine.seq_scan, 1);
        assert_eq!(fine.seq_rows, base.seq_rows);
        assert_eq!(fine.tube_seq_planes, base.tube_seq_planes);
        assert_eq!(fine.pram_base_rows, base.pram_base_rows);
        assert_eq!(fine.batch_chunks_per_thread, base.batch_chunks_per_thread);
        assert_eq!(fine.kernel, base.kernel);
    }

    #[test]
    fn default_kernel_is_auto() {
        assert_eq!(Tuning::DEFAULT.kernel, Kernel::Auto);
        // Applying the default must not disturb the global selection.
        let before = monge_core::kernel::selected();
        Tuning::DEFAULT.apply_kernel();
        assert_eq!(monge_core::kernel::selected(), before);
    }

    #[test]
    fn default_trait_matches_const() {
        assert_eq!(Tuning::default(), Tuning::DEFAULT);
    }
}
