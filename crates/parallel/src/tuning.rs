//! Centralized sequential-cutoff thresholds for the parallel engines.
//!
//! Every divide & conquer engine in this crate bottoms out into a
//! sequential scan once the subproblem is small enough that spawning
//! costs more than it saves. Those cutoffs used to be copy-pasted
//! `const`s scattered across the engine modules; they now live here,
//! with environment-variable overrides so deployments can retune
//! without recompiling.
//!
//! | knob | env var | default |
//! |---|---|---|
//! | [`seq_scan`] | `MONGE_SEQ_SCAN` | 2048 |
//! | [`seq_rows`] | `MONGE_SEQ_ROWS` | 64 |
//! | [`tube_seq_planes`] | `MONGE_TUBE_SEQ_PLANES` | 8 |
//! | [`pram_base_rows`] | `MONGE_PRAM_BASE_ROWS` | 4 |
//!
//! Defaults were chosen with `cargo bench -p monge-bench --bench
//! substrates` (row-minima group) on an 8-core x86-64 host: below ~2k
//! elements a rayon task's spawn/steal overhead (~1–2 µs) exceeds the
//! scan itself, and below ~64 rows the per-level join overhead of the
//! row recursion dominates. The `rowmin_json` binary in `crates/bench`
//! regenerates the supporting numbers.
//!
//! Each getter parses its variable once per process (malformed or
//! zero values fall back to the default — a zero cutoff would recurse
//! forever).

use std::sync::OnceLock;

fn env_usize(lock: &'static OnceLock<usize>, var: &str, default: usize) -> usize {
    *lock.get_or_init(|| {
        std::env::var(var)
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&v| v > 0)
            .unwrap_or(default)
    })
}

/// Column intervals at most this wide are scanned sequentially instead
/// of being split across rayon tasks.
pub fn seq_scan() -> usize {
    static V: OnceLock<usize> = OnceLock::new();
    env_usize(&V, "MONGE_SEQ_SCAN", 2048)
}

/// Row ranges at most this tall are solved by the sequential divide &
/// conquer instead of forking.
pub fn seq_rows() -> usize {
    static V: OnceLock<usize> = OnceLock::new();
    env_usize(&V, "MONGE_SEQ_ROWS", 64)
}

/// Tube problems with at most this many planes (rows of `D`) run the
/// per-plane loop sequentially.
pub fn tube_seq_planes() -> usize {
    static V: OnceLock<usize> = OnceLock::new();
    env_usize(&V, "MONGE_TUBE_SEQ_PLANES", 8)
}

/// Row ranges at most this tall are handled directly by a PRAM
/// interval-minimum step instead of recursing.
pub fn pram_base_rows() -> usize {
    static V: OnceLock<usize> = OnceLock::new();
    env_usize(&V, "MONGE_PRAM_BASE_ROWS", 4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_positive() {
        assert!(seq_scan() > 0);
        assert!(seq_rows() > 0);
        assert!(tube_seq_planes() > 0);
        assert!(pram_base_rows() > 0);
    }
}
