//! Multithreaded tube maxima / minima of Monge-composite arrays.
//!
//! Two engines:
//!
//! * [`par_tube_maxima`] / [`par_tube_minima`] — plane-parallel: each of
//!   the `p` Monge planes `F_i[k][j] = d[i,j] + e[j,k]` is an independent
//!   SMAWK instance (`Θ(q + r)` work each); rayon distributes planes over
//!   cores. Work `O(p(q + r))` — the sequential optimum — with span
//!   `O(q + r)`.
//! * [`par_tube_minima_dc`] — the doubly-monotone divide & conquer the
//!   PRAM/hypercube engines use (argmin `j*(i,k)` is non-decreasing in
//!   both `i` and `k`), exercised here for cross-engine validation and as
//!   the low-span alternative (span `O(lg p · (q + lg r))`).
//!
//! Grain sizes come from the [`Tuning`] value threaded through every
//! call; per-plane index buffers and scan scratch come from the
//! thread-local arena ([`monge_core::scratch`]).

use crate::rayon_monge::interval_argmin;
use crate::runtime;
use crate::tuning::Tuning;
use monge_core::array2d::Array2d;
use monge_core::scratch::{with_scratch, with_scratch2};
use monge_core::tube::{plane, TubeExtrema};
use monge_core::value::Value;
use rayon::prelude::*;

/// Plane-parallel tube maxima: `(max,+)` product of Monge factors.
pub fn par_tube_maxima<T: Value, A: Array2d<T>, B: Array2d<T>>(d: &A, e: &B) -> TubeExtrema<T> {
    par_tube(d, e, true)
}

/// Plane-parallel tube minima: `(min,+)` product of Monge factors.
pub fn par_tube_minima<T: Value, A: Array2d<T>, B: Array2d<T>>(d: &A, e: &B) -> TubeExtrema<T> {
    par_tube(d, e, false)
}

fn par_tube<T: Value, A: Array2d<T>, B: Array2d<T>>(d: &A, e: &B, maxima: bool) -> TubeExtrema<T> {
    assert_eq!(d.cols(), e.rows(), "inner dimensions disagree");
    let (p, q, r) = (d.rows(), d.cols(), e.cols());
    assert!(q > 0);
    runtime::add_tasks(p as u64);
    let per_plane: Vec<(Vec<usize>, Vec<T>)> = (0..p)
        .into_par_iter()
        .map(|i| {
            let pl = plane(d, e, i);
            let ex = if maxima {
                monge_core::smawk::row_maxima_monge(&pl)
            } else {
                monge_core::smawk::row_minima_monge(&pl)
            };
            (ex.index, ex.value)
        })
        .collect();
    let mut index = Vec::with_capacity(p * r);
    let mut value = Vec::with_capacity(p * r);
    for (idx, val) in per_plane {
        index.extend(idx);
        value.extend(val);
    }
    TubeExtrema { p, r, index, value }
}

/// Divide & conquer tube minima using double argmin monotonicity: solve
/// the middle plane with SMAWK, then recurse on the upper and lower plane
/// blocks with `j`-ranges clipped by the middle plane's argmins. Explicit
/// tuning variant.
pub fn par_tube_minima_dc_with<T: Value, A: Array2d<T>, B: Array2d<T>>(
    d: &A,
    e: &B,
    t: Tuning,
) -> TubeExtrema<T> {
    assert_eq!(d.cols(), e.rows(), "inner dimensions disagree");
    let (p, q, r) = (d.rows(), d.cols(), e.cols());
    assert!(q > 0);
    let mut index = vec![0usize; p * r];
    let mut value = vec![T::ZERO; p * r];
    with_scratch2(|lo: &mut Vec<usize>, hi: &mut Vec<usize>| {
        lo.clear();
        lo.resize(r, 0);
        hi.clear();
        hi.resize(r, q);
        dc(d, e, 0, p, lo, hi, r, &mut index, &mut value, t);
    });
    TubeExtrema { p, r, index, value }
}

/// [`par_tube_minima_dc_with`] with environment-seeded tuning.
pub fn par_tube_minima_dc<T: Value, A: Array2d<T>, B: Array2d<T>>(d: &A, e: &B) -> TubeExtrema<T> {
    par_tube_minima_dc_with(d, e, Tuning::from_env())
}

/// Solves planes `i0..i1`; plane `i`'s argmin for column `k` is known to
/// lie in `[lo[k], hi[k])`.
#[allow(clippy::too_many_arguments)]
fn dc<T: Value, A: Array2d<T>, B: Array2d<T>>(
    d: &A,
    e: &B,
    i0: usize,
    i1: usize,
    lo: &[usize],
    hi: &[usize],
    r: usize,
    index: &mut [usize],
    value: &mut [T],
    t: Tuning,
) {
    monge_core::guard::checkpoint();
    if i0 >= i1 {
        return;
    }
    let mid = i0 + (i1 - i0) / 2;
    // Solve the middle plane by a constrained sweep, then recurse with
    // the argmins as nested bounds. The sweep's argmin buffer doubles as
    // the upper recursion's `hi` (shifted by one) and the lower's `lo`,
    // so one pooled checkout serves all three uses.
    with_scratch2(|mid_arg: &mut Vec<usize>, scratch: &mut Vec<T>| {
        mid_arg.clear();
        mid_arg.resize(r, 0);
        {
            // Argmin is monotone in k, and sandwiched in [lo[k], hi[k]).
            // Each sandwich interval is one batched scan of the plane row
            // (Plane::fill_row fetches the d-row slice in one call and
            // folds in the e column).
            let pl = plane(d, e, mid);
            let mut from = 0usize;
            for k in 0..r {
                let a = lo[k].max(from);
                let b = hi[k].max(a + 1).min(d.cols());
                let a = a.min(d.cols() - 1);
                let (best, best_v) = interval_argmin(&pl, k, a, b, scratch, t);
                mid_arg[k] = best;
                from = best;
                let at = (mid - i0) * r + k;
                index[at] = best;
                value[at] = best_v;
            }
        }
        let (top, rest) = index.split_at_mut((mid - i0) * r);
        let bot_i = &mut rest[r..];
        let (top_v, rest_v) = value.split_at_mut((mid - i0) * r);
        let bot_v = &mut rest_v[r..];
        // Upper planes: argmin(i,k) <= mid_arg[k]; lower: >= mid_arg[k].
        with_scratch(|hi_top: &mut Vec<usize>| {
            hi_top.clear();
            hi_top.extend(mid_arg.iter().map(|&j| j + 1));
            let lo_bot = &*mid_arg;
            if i1 - i0 > t.tube_seq_planes.max(1) {
                runtime::join_tracked(
                    || dc(d, e, i0, mid, lo, hi_top, r, top, top_v, t),
                    || dc(d, e, mid + 1, i1, lo_bot, hi, r, bot_i, bot_v, t),
                );
            } else {
                dc(d, e, i0, mid, lo, hi_top, r, top, top_v, t);
                dc(d, e, mid + 1, i1, lo_bot, hi, r, bot_i, bot_v, t);
            }
        });
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use monge_core::generators::random_monge_dense;
    use monge_core::tube::{tube_maxima_brute, tube_minima_brute};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn plane_parallel_matches_brute() {
        let mut rng = StdRng::seed_from_u64(60);
        for &(p, q, r) in &[
            (1usize, 1usize, 1usize),
            (8, 5, 9),
            (16, 16, 16),
            (3, 20, 2),
        ] {
            let d = random_monge_dense(p, q, &mut rng);
            let e = random_monge_dense(q, r, &mut rng);
            assert_eq!(
                par_tube_maxima(&d, &e),
                tube_maxima_brute(&d, &e),
                "{p}x{q}x{r}"
            );
            assert_eq!(
                par_tube_minima(&d, &e),
                tube_minima_brute(&d, &e),
                "{p}x{q}x{r}"
            );
        }
    }

    #[test]
    fn dc_matches_brute() {
        let mut rng = StdRng::seed_from_u64(61);
        for &(p, q, r) in &[(1usize, 4usize, 6usize), (20, 10, 20), (31, 7, 13)] {
            let d = random_monge_dense(p, q, &mut rng);
            let e = random_monge_dense(q, r, &mut rng);
            assert_eq!(
                par_tube_minima_dc(&d, &e),
                tube_minima_brute(&d, &e),
                "{p}x{q}x{r}"
            );
        }
    }

    #[test]
    fn dc_and_plane_agree_on_ties() {
        use monge_core::array2d::Dense;
        let d = Dense::filled(6, 7, 1i64);
        let e = Dense::filled(7, 5, 2i64);
        let a = par_tube_minima(&d, &e);
        let b = par_tube_minima_dc(&d, &e);
        assert_eq!(a, b);
        assert!(a.index.iter().all(|&j| j == 0));
    }

    #[test]
    fn plateau_wider_than_cutoff_stays_leftmost() {
        use monge_core::array2d::Dense;
        // Middle dimension wider than the parallel-scan cutoff and more
        // planes than the sequential-plane cutoff: the all-equal tube
        // must still pick the smallest middle coordinate everywhere.
        let t = Tuning::from_env();
        let q = t.seq_scan + 5;
        let p = t.tube_seq_planes * 2 + 1;
        let d = Dense::filled(p, q, 1i64);
        let e = Dense::filled(q, 3, 2i64);
        let a = par_tube_minima(&d, &e);
        let b = par_tube_minima_dc(&d, &e);
        assert_eq!(a, b);
        assert!(a.index.iter().all(|&j| j == 0));
    }

    #[test]
    fn degenerate_cutoffs_still_match_brute() {
        let t = Tuning {
            seq_scan: 1,
            tube_seq_planes: 1,
            ..Tuning::DEFAULT
        };
        let mut rng = StdRng::seed_from_u64(62);
        let d = random_monge_dense(13, 9, &mut rng);
        let e = random_monge_dense(9, 11, &mut rng);
        assert_eq!(
            par_tube_minima_dc_with(&d, &e, t),
            tube_minima_brute(&d, &e)
        );
    }
}
