//! All-Nearest-Smaller-Values on the simulated PRAM — the \[BBG+89\]
//! substrate Lemma 2.2 invokes for processor allocation ("an application
//! of their ANSV algorithm followed by sorting enables us to allocate
//! processors"), executed on the machine with step accounting.
//!
//! ## Algorithm
//!
//! 1. **Doubling table**: `T_k[i] = min a[i .. i + 2^k)` for all `i`,
//!    built in `⌈lg n⌉` steps with `n` processors.
//! 2. **Exponential search + binary descent** per element, one table
//!    query per step, all elements in parallel: grow `2^k` windows to the
//!    left until one contains a smaller value, then descend to the
//!    nearest one. `O(lg n)` steps, `n` processors, `O(n lg n)` work —
//!    a `lg n` factor above \[BBG+89\]'s optimal version (the blocked
//!    rayon implementation in [`crate::ansv_par`] is the work-efficient
//!    one); the *time* bound, which Lemma 2.2's critical path needs,
//!    matches.
//!
//! The right-matches come from running the same program on the reversed,
//! index-mirrored sequence.

use monge_core::ansv::Ansv;
use monge_pram::machine::{Mode, Pram};
use monge_pram::{Metrics, WritePolicy};

/// Result of a PRAM ANSV run.
#[derive(Clone, Debug)]
pub struct PramAnsvRun {
    /// The matches.
    pub ansv: Ansv,
    /// Simulator metrics.
    pub metrics: Metrics,
}

/// ANSV on a CREW PRAM: `O(lg n)` steps, `n` processors.
pub fn pram_ansv(a: &[i64]) -> PramAnsvRun {
    let mut p = Pram::new(Mode::Crcw(WritePolicy::Arbitrary));
    let left = directional(&mut p, a);
    let rev: Vec<i64> = a.iter().rev().copied().collect();
    let right_rev = directional(&mut p, &rev);
    let n = a.len();
    let right: Vec<Option<usize>> = (0..n)
        .map(|i| right_rev[n - 1 - i].map(|j| n - 1 - j))
        .collect();
    PramAnsvRun {
        ansv: Ansv { left, right },
        metrics: p.metrics().clone(),
    }
}

/// Nearest smaller to the LEFT of every element, on the machine.
fn directional(p: &mut Pram<i64>, a: &[i64]) -> Vec<Option<usize>> {
    let n = a.len();
    if n == 0 {
        return Vec::new();
    }
    let levels = (usize::BITS - (n - 1).max(1).leading_zeros()) as usize;
    // Table rows: T_0 = a, T_k[i] = min(T_{k-1}[i], T_{k-1}[i + 2^{k-1}]).
    let t0 = p.load(a);
    let mut rows = vec![t0.start];
    for k in 1..=levels {
        let prev = rows[k - 1];
        let row = p.alloc(n, i64::MAX);
        let start = row.start;
        let h = 1usize << (k - 1);
        p.step(n, |ctx| {
            let i = ctx.proc();
            let x = ctx.read(prev + i);
            let y = if i + h < n { ctx.read(prev + i + h) } else { x };
            ctx.write(start + i, x.min(y));
        });
        rows.push(start);
    }
    // Per-element state in one machine cell: `cur`, the exclusive right
    // end of the still-unsearched prefix `[0, cur)`.
    let cur = p.alloc(n, 0i64);
    let cs = cur.start;
    p.step(n, |ctx| {
        let i = ctx.proc();
        ctx.write(cs + i, i as i64);
    });
    // Binary descent from the largest scale, all elements in parallel,
    // one table probe per step: at scale k, if the window `[cur-2^k,
    // cur)` contains no value smaller than `a[i]`, skip past it.
    for k in (0..=levels).rev() {
        let h = 1usize << k;
        let row = rows[k];
        p.step(n, |ctx| {
            let i = ctx.proc();
            let c = ctx.read(cs + i) as usize;
            if c >= h {
                let blockmin = ctx.read(row + (c - h));
                let me = ctx.read(rows[0] + i);
                if blockmin >= me {
                    ctx.write(cs + i, (c - h) as i64);
                }
            }
        });
    }
    // After the descent, cur is the number of left elements skipped; the
    // match is cur - 1 when cur > 0 and a[cur - 1] < a[i], else none.
    let result = p.alloc(n, -1i64);
    let rs = result.start;
    p.step(n, |ctx| {
        let i = ctx.proc();
        let c = ctx.read(cs + i) as usize;
        if c > 0 {
            let v = ctx.read(rows[0] + (c - 1));
            let me = ctx.read(rows[0] + i);
            if v < me {
                ctx.write(rs + i, (c - 1) as i64);
            }
        }
    });
    (0..n)
        .map(|i| {
            let v = p.peek(rs + i);
            (v >= 0).then_some(v as usize)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use monge_core::ansv::ansv;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    #[test]
    fn matches_sequential_on_random_inputs() {
        let mut rng = StdRng::seed_from_u64(230);
        for n in [1usize, 2, 3, 8, 33, 100, 511] {
            let a: Vec<i64> = (0..n).map(|_| rng.random_range(0..40)).collect();
            let run = pram_ansv(&a);
            assert_eq!(run.ansv, ansv(&a), "n={n}");
        }
    }

    #[test]
    fn sorted_and_constant_sequences() {
        let inc: Vec<i64> = (0..64).collect();
        assert_eq!(pram_ansv(&inc).ansv, ansv(&inc));
        let dec: Vec<i64> = (0..64).rev().collect();
        assert_eq!(pram_ansv(&dec).ansv, ansv(&dec));
        let cst = vec![5i64; 40];
        assert_eq!(pram_ansv(&cst).ansv, ansv(&cst));
    }

    #[test]
    fn steps_are_logarithmic() {
        let steps_of = |n: usize| {
            let a: Vec<i64> = (0..n).map(|i| ((i * 2654435761) % 1000) as i64).collect();
            pram_ansv(&a).metrics.steps
        };
        let s256 = steps_of(256);
        let s4096 = steps_of(4096);
        // lg 4096 / lg 256 = 12/8: allow slack but rule out linear (16x).
        assert!(s4096 <= 2 * s256, "{s256} -> {s4096}");
    }

    #[test]
    fn descent_needs_no_exact_powers() {
        let mut rng = StdRng::seed_from_u64(231);
        for n in [5usize, 17, 100, 1000] {
            let a: Vec<i64> = (0..n).map(|_| rng.random_range(0..10)).collect();
            assert_eq!(pram_ansv(&a).ansv, ansv(&a), "n={n}");
        }
    }
}
