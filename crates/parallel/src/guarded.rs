//! The guarded solve layer: [`Dispatcher::solve_guarded`] runs each
//! backend of a deterministic fallback chain under `catch_unwind`,
//! validates the caller's structural promise per [`GuardPolicy`], and
//! degrades gracefully — selected backend → rayon → sequential SMAWK →
//! brute-force scan — instead of panicking or silently returning
//! corrupt minima.
//!
//! ## Fallback chain
//!
//! ```text
//!   validate (off / sampled / full)
//!        │ violation: Fail → Err(StructureViolation{witness})
//!        │ violation: Quarantine → chain = [brute]
//!        ▼
//!   [selected backend] ──panic──▶ [rayon] ──panic──▶ [sequential]
//!        │                           │                   │
//!        │ Cancelled sentinel        │                   │ panic
//!        ▼                           ▼                   ▼
//!   Err(DeadlineExceeded)        (dedup'd)          [brute scan]
//!                                                        │ panic
//!                                                        ▼
//!                                                Err(BackendPanic)
//! ```
//!
//! Every attempt is recorded in [`GuardOutcome::attempts`], which the
//! dispatcher stamps into [`Telemetry::guard`] on success — a degraded
//! solve is always observable. The brute-force terminal backend scans
//! every candidate without using the structural promise, so it returns
//! correct extrema even for arrays whose Monge promise is broken.
//!
//! Validation runs **exactly once per request**, before the chain walk:
//! fallback attempts never re-validate, so
//! [`GuardOutcome::validation_nanos`] is a one-shot cost independent of
//! fallback depth (pinned by the `validation_once` regression tests,
//! and what makes the batch layer's validate-at-admission bookkeeping
//! equivalent to this one).
//!
//! Deadlines are cooperative: the engines call
//! [`monge_core::guard::checkpoint`] at recursion leaves and
//! interval-scan boundaries; `solve_guarded` installs a
//! [`monge_core::guard::CancelToken`] for the duration of each attempt
//! and converts the resulting [`Cancelled`] unwind into
//! [`SolveError::DeadlineExceeded`].
//!
//! ## Resilience (PR 9)
//!
//! The chain walk consults the dispatcher's [`crate::health`] registry
//! per link: a backend whose circuit breaker is Open is *skipped*
//! before any attempt is paid for (counted in
//! [`Telemetry::breaker_skips`]), and every attempt's outcome feeds the
//! registry's sliding window. The [`BruteForceBackend`] terminal is
//! exempt — a degraded process always reaches the correct slow path —
//! so [`SolveError::CircuitOpen`] only surfaces when the caller pinned
//! or truncated the chain away from the terminal. Transient faults
//! (panics, and deadline aborts with slack remaining) retry in place
//! under [`monge_core::guard::RetryPolicy`]'s seeded decorrelated
//! jitter, gated by the registry's global retry budget; each retry is a
//! fresh [`GuardOutcome::attempts`] entry and is counted in
//! [`Telemetry::retries`]. Successful solves carry a
//! [`Telemetry::health_snapshot`] of every tracked backend.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

use monge_core::array2d::Array2d;
use monge_core::guard::{
    checkpoint, payload_to_string, with_cancellation, Attempt, AttemptOutcome, CancelToken,
    Cancelled, GuardOutcome, GuardPolicy, SolveError, Validation, ViolationAction,
    ViolationWitness,
};
use monge_core::monge::{
    check_inverse_monge, check_monge, check_monge_banded, check_staircase_inverse_monge_prefix,
    check_staircase_monge_prefix, spot_check_inverse_monge, spot_check_monge,
    spot_check_monge_banded, spot_check_staircase_monge_prefix,
};
use monge_core::problem::{Metered, Objective, Problem, ProblemKind, Solution, Telemetry};
use monge_core::scratch::with_scratch;
use monge_core::smawk::RowExtrema;
use monge_core::value::Value;
use monge_core::{eval, tube};

use crate::dispatch::{banded_values, plain_row_opt, Backend, Capabilities, Dispatcher};
use crate::health::{Admission, Observation};
use crate::tuning::Tuning;

/// The terminal link of every fallback chain: leftmost scans over every
/// candidate, with no use of the structural promise. `O(mn)` (`O(pqr)`
/// for tubes), correct for arbitrary entries, and checkpointed per row
/// so deadlines still abort it.
pub struct BruteForceBackend;

/// The registry name of [`BruteForceBackend`].
pub const BRUTE: &str = "brute";

impl<T: Value> Backend<T> for BruteForceBackend {
    fn name(&self) -> &'static str {
        BRUTE
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities::of(&ProblemKind::ALL)
    }

    fn solve(
        &self,
        problem: &Problem<'_, T>,
        _tuning: &Tuning,
        telemetry: &mut Telemetry,
    ) -> Solution<T> {
        let t0 = Instant::now();
        let sol = match *problem {
            Problem::Rows {
                array,
                objective,
                tie,
                ..
            } => {
                let a = Metered::new(array);
                let index = with_scratch(|buf: &mut Vec<T>| {
                    (0..a.rows())
                        .map(|i| {
                            checkpoint();
                            plain_row_opt(&a, i, objective, tie, buf)
                        })
                        .collect()
                });
                telemetry.evaluations += a.evaluations();
                Solution::Rows(RowExtrema::from_indices(&a, index))
            }
            Problem::Staircase {
                array, boundary, ..
            } => {
                let a = Metered::new(array);
                let n = a.cols();
                let index = with_scratch(|buf: &mut Vec<T>| {
                    (0..a.rows())
                        .map(|i| {
                            checkpoint();
                            // A fully-infeasible row (empty finite prefix)
                            // takes the canonical sentinel answer — index 0,
                            // value +∞, no reads — matching the fast engines.
                            let fi = boundary[i].min(n);
                            if fi == 0 {
                                return 0;
                            }
                            eval::interval_argmin(&a, i, 0, fi, buf).0
                        })
                        .collect()
                });
                telemetry.evaluations += a.evaluations();
                Solution::Rows(RowExtrema::from_staircase_indices(&a, boundary, index))
            }
            Problem::Banded {
                array,
                lo,
                hi,
                objective,
            } => {
                let a = Metered::new(array);
                let n = a.cols();
                let index: Vec<Option<usize>> = with_scratch(|buf: &mut Vec<T>| {
                    (0..a.rows())
                        .map(|i| {
                            checkpoint();
                            let (s, e) = (lo[i].min(n), hi[i].min(n));
                            if s >= e {
                                return None;
                            }
                            Some(match objective {
                                Objective::Minimize => eval::interval_argmin(&a, i, s, e, buf).0,
                                Objective::Maximize => eval::interval_argmax(&a, i, s, e, buf).0,
                            })
                        })
                        .collect()
                });
                let value = banded_values(&a, &index);
                telemetry.evaluations += a.evaluations();
                Solution::Banded { index, value }
            }
            Problem::Tube { d, e, objective } => {
                let (dm, em) = (Metered::new(d), Metered::new(e));
                checkpoint();
                let ex = match objective {
                    Objective::Minimize => tube::tube_minima_brute(&dm, &em),
                    Objective::Maximize => tube::tube_maxima_brute(&dm, &em),
                };
                telemetry.evaluations += dm.evaluations() + em.evaluations();
                Solution::Tube(ex)
            }
        };
        telemetry.record_phase("search", t0.elapsed().as_nanos());
        sol
    }
}

/// Sampled-mode budget: enough draws that a violation density of `1/n`
/// escapes with probability `≈ e^{-16}` while the cost stays `O(m+n)`.
fn sample_budget(m: usize, n: usize) -> usize {
    16 * (m + n)
}

/// Validates the problem's structural promise per the policy. `Ok(())`
/// means "no violation found" (vacuously for [`Validation::Off`] and
/// for `Plain` structure).
pub(crate) fn validate<T: Value>(
    problem: &Problem<'_, T>,
    policy: &GuardPolicy,
) -> Result<(), Box<ViolationWitness>> {
    use monge_core::problem::Structure;
    let full = match policy.validation {
        Validation::Off => return Ok(()),
        Validation::Full => true,
        Validation::Sampled => false,
    };
    let seed = policy.seed;
    match *problem {
        Problem::Rows {
            array, structure, ..
        } => {
            let (m, n) = (array.rows(), array.cols());
            match structure {
                Structure::Plain => Ok(()),
                Structure::Monge => {
                    let r = if full {
                        check_monge(&array)
                    } else {
                        spot_check_monge(&array, sample_budget(m, n), seed)
                    };
                    r.map_err(|v| Box::new(ViolationWitness::from_monge("Monge", &v)))
                }
                Structure::InverseMonge => {
                    let r = if full {
                        check_inverse_monge(&array)
                    } else {
                        spot_check_inverse_monge(&array, sample_budget(m, n), seed)
                    };
                    r.map_err(|v| Box::new(ViolationWitness::from_monge("inverse-Monge", &v)))
                }
            }
        }
        Problem::Staircase {
            array,
            boundary,
            structure,
            ..
        } => {
            let (m, n) = (array.rows(), array.cols());
            match structure {
                Structure::InverseMonge => check_staircase_inverse_monge_prefix(&array, boundary)
                    .map_err(|v| {
                        Box::new(ViolationWitness::from_monge("staircase-inverse-Monge", &v))
                    }),
                _ => {
                    let r = if full {
                        check_staircase_monge_prefix(&array, boundary)
                    } else {
                        spot_check_staircase_monge_prefix(
                            &array,
                            boundary,
                            sample_budget(m, n),
                            seed,
                        )
                    };
                    r.map_err(|v| Box::new(ViolationWitness::from_monge("staircase-Monge", &v)))
                }
            }
        }
        Problem::Banded { array, lo, hi, .. } => {
            let (m, n) = (array.rows(), array.cols());
            let r = if full {
                check_monge_banded(&array, lo, hi)
            } else {
                spot_check_monge_banded(&array, lo, hi, sample_budget(m, n), seed)
            };
            r.map_err(|v| Box::new(ViolationWitness::from_monge("banded-Monge", &v)))
        }
        Problem::Tube { d, e, .. } => {
            // Both factors of the composite must be Monge.
            for (name, f) in [("tube factor d", d), ("tube factor e", e)] {
                let (m, n) = (f.rows(), f.cols());
                let r = if full {
                    check_monge(&f)
                } else {
                    spot_check_monge(&f, sample_budget(m, n), seed)
                };
                if let Err(v) = r {
                    return Err(Box::new(ViolationWitness::from_monge(name, &v)));
                }
            }
            Ok(())
        }
    }
}

impl<T: Value> Dispatcher<T> {
    /// Guarded solve with environment-seeded tuning: validates the
    /// structural promise, then walks the fallback chain starting from
    /// the auto-selected backend. See [`Dispatcher::solve_guarded_with`].
    pub fn solve_guarded(
        &self,
        problem: &Problem<'_, T>,
        policy: &GuardPolicy,
    ) -> Result<(Solution<T>, Telemetry), SolveError> {
        self.solve_guarded_with(problem, policy, Tuning::from_env())
    }

    /// Guarded solve starting the chain at the named backend (simulators
    /// included). Unknown names fail with [`SolveError::InvalidInput`];
    /// an ineligible first link is skipped like any ineligible chain
    /// link.
    pub fn solve_guarded_on(
        &self,
        name: &str,
        problem: &Problem<'_, T>,
        policy: &GuardPolicy,
        tuning: Tuning,
    ) -> Result<(Solution<T>, Telemetry), SolveError> {
        if self.find(name).is_none() {
            return Err(SolveError::InvalidInput {
                reason: format!("no backend named '{name}' is registered"),
            });
        }
        let first = self.find(name).map(|b| b.name());
        self.guarded_impl(problem, policy, tuning, first)
    }

    /// Guarded solve with explicit tuning.
    pub fn solve_guarded_with(
        &self,
        problem: &Problem<'_, T>,
        policy: &GuardPolicy,
        tuning: Tuning,
    ) -> Result<(Solution<T>, Telemetry), SolveError> {
        self.guarded_impl(problem, policy, tuning, None)
    }

    fn guarded_impl(
        &self,
        problem: &Problem<'_, T>,
        policy: &GuardPolicy,
        tuning: Tuning,
        first: Option<&'static str>,
    ) -> Result<(Solution<T>, Telemetry), SolveError> {
        let start = Instant::now();
        let token = policy.deadline.map(CancelToken::with_deadline);
        let health = self.health();
        // Every admitted request credits the global retry budget (see
        // `crate::health`): retries stay a bounded fraction of load.
        health.credit_request();
        let mut outcome = GuardOutcome {
            validation: policy.validation,
            ..GuardOutcome::default()
        };

        // --- Input sanity the engines otherwise assert on. ---
        if let Err(reason) = input_preconditions(problem) {
            return Err(SolveError::InvalidInput { reason });
        }

        // --- Validation (under catch_unwind: the array itself may
        //     panic while being read). ---
        let t0 = Instant::now();
        let validated = catch_unwind(AssertUnwindSafe(|| validate(problem, policy)));
        outcome.validation_nanos = t0.elapsed().as_nanos();
        let quarantined = match validated {
            Ok(Ok(())) => false,
            Ok(Err(witness)) => {
                // Broken promises are a health signal too: recorded
                // against the "validator" pseudo-backend, which is
                // never admission-checked (it is not a chain link) but
                // shows up in snapshots.
                health.record(
                    "validator",
                    Observation::Violation,
                    outcome.validation_nanos.min(u64::MAX as u128) as u64,
                );
                match policy.on_violation {
                    ViolationAction::Fail => return Err(SolveError::StructureViolation(witness)),
                    ViolationAction::Quarantine => {
                        outcome.quarantined = true;
                        outcome.witness = Some(*witness);
                        true
                    }
                }
            }
            Err(payload) => {
                return Err(SolveError::BackendPanic {
                    backend: "validator",
                    payload: payload_to_string(payload.as_ref()),
                })
            }
        };

        // --- Build the deterministic fallback chain. ---
        let brute = BruteForceBackend;
        let mut chain: Vec<&dyn Backend<T>> = Vec::new();
        if !quarantined {
            let auto = first.unwrap_or_else(|| self.select(problem, &tuning).name());
            for name in [auto, "rayon", "sequential"] {
                if chain.iter().any(|b| b.name() == name) {
                    continue;
                }
                if let Some(b) = self.find(name) {
                    if b.eligible(problem) {
                        chain.push(b);
                    }
                }
            }
        }
        chain.push(&brute);
        chain.truncate(policy.max_fallback_depth + 1);

        // --- Walk the chain, each attempt under catch_unwind. The
        //     breaker is consulted per link at walk time (never for the
        //     brute terminal); transient faults retry in place under
        //     the policy's backoff while the global budget allows. ---
        let retry = policy.retry;
        let mut last_panic: Option<SolveError> = None;
        let mut skipped_open: Option<(&'static str, Duration)> = None;
        let mut retries: u64 = 0;
        let mut breaker_skips: u64 = 0;
        let mut attempted_any = false;
        for backend in chain.iter() {
            if let Some(tok) = &token {
                if tok.is_cancelled() {
                    return Err(deadline_error(start, policy));
                }
            }
            let name = backend.name();
            if name != BRUTE {
                if let Admission::Deny { retry_after } = health.admit(name) {
                    breaker_skips += 1;
                    if skipped_open.is_none() {
                        skipped_open = Some((name, retry_after));
                    }
                    continue;
                }
            }
            let mut attempts_here: u32 = 0;
            loop {
                attempts_here += 1;
                attempted_any = true;
                let t_attempt = Instant::now();
                let attempt = catch_unwind(AssertUnwindSafe(|| match &token {
                    Some(tok) => with_cancellation(tok, || self.run(*backend, problem, &tuning)),
                    None => self.run(*backend, problem, &tuning),
                }));
                let latency = t_attempt.elapsed().as_nanos().min(u64::MAX as u128) as u64;
                match attempt {
                    Ok((solution, mut telemetry)) => {
                        health.record(name, Observation::Ok, latency);
                        outcome.attempts.push(Attempt {
                            backend: name,
                            outcome: AttemptOutcome::Completed,
                        });
                        telemetry.guard = Some(outcome);
                        telemetry.retries = retries;
                        telemetry.breaker_skips = breaker_skips;
                        telemetry.health_snapshot = Some(health.snapshot());
                        return Ok((solution, telemetry));
                    }
                    Err(payload) => {
                        if payload.downcast_ref::<Cancelled>().is_some() {
                            health.record(name, Observation::Deadline, latency);
                            outcome.attempts.push(Attempt {
                                backend: name,
                                outcome: AttemptOutcome::DeadlineExceeded,
                            });
                            // A deadline abort only retries when slack
                            // remains — i.e. an explicit cancel raced a
                            // deadline that has not actually elapsed.
                            let slack = token
                                .as_ref()
                                .and_then(|t| t.remaining())
                                .unwrap_or(Duration::ZERO);
                            if !slack.is_zero()
                                && retry.allows(attempts_here)
                                && health.try_spend_retry()
                            {
                                retries += 1;
                                health
                                    .clock()
                                    .sleep(retry.backoff(policy.seed, attempts_here));
                                continue;
                            }
                            return Err(deadline_error(start, policy));
                        }
                        health.record(name, Observation::Panic, latency);
                        outcome.attempts.push(Attempt {
                            backend: name,
                            outcome: AttemptOutcome::Panicked,
                        });
                        last_panic = Some(SolveError::BackendPanic {
                            backend: name,
                            payload: payload_to_string(payload.as_ref()),
                        });
                        let deadline_live = token.as_ref().is_none_or(|t| !t.is_cancelled());
                        if deadline_live && retry.allows(attempts_here) && health.try_spend_retry()
                        {
                            retries += 1;
                            health
                                .clock()
                                .sleep(retry.backoff(policy.seed, attempts_here));
                            continue;
                        }
                        break; // next chain link
                    }
                }
            }
        }
        if !attempted_any {
            if let Some((backend, retry_after)) = skipped_open {
                // Every reachable link was breaker-denied (possible when
                // `max_fallback_depth` truncates the brute terminal away
                // or the chain was pinned): a typed, retryable refusal.
                return Err(SolveError::CircuitOpen {
                    backend,
                    retry_after,
                });
            }
        }
        Err(last_panic.unwrap_or(SolveError::BackendPanic {
            backend: BRUTE,
            payload: "fallback chain was empty".to_string(),
        }))
    }
}

fn deadline_error(start: Instant, policy: &GuardPolicy) -> SolveError {
    SolveError::DeadlineExceeded {
        elapsed: start.elapsed(),
        deadline: policy.deadline.unwrap_or_default(),
    }
}

/// The input-shape preconditions the engines `assert!` on, reported as
/// typed errors instead: array extents, boundary/band lengths and
/// monotonicity, tube inner dimensions.
pub(crate) fn input_preconditions<T: Value>(problem: &Problem<'_, T>) -> Result<(), String> {
    match *problem {
        Problem::Rows { array, .. } => {
            if array.rows() > 0 && array.cols() == 0 {
                return Err("rows problem with zero columns".to_string());
            }
        }
        Problem::Staircase {
            array, boundary, ..
        } => {
            if boundary.len() != array.rows() {
                return Err(format!(
                    "boundary length {} != rows {}",
                    boundary.len(),
                    array.rows()
                ));
            }
            if array.rows() > 0 && array.cols() == 0 {
                return Err("staircase problem with zero columns".to_string());
            }
            if boundary.windows(2).any(|w| w[1] > w[0]) {
                return Err("staircase boundary must be non-increasing".to_string());
            }
        }
        Problem::Banded { array, lo, hi, .. } => {
            let m = array.rows();
            if lo.len() != m || hi.len() != m {
                return Err(format!(
                    "band lengths ({}, {}) != rows {}",
                    lo.len(),
                    hi.len(),
                    m
                ));
            }
        }
        Problem::Tube { d, e, .. } => {
            if d.cols() != e.rows() {
                return Err(format!(
                    "tube inner dimensions disagree: d is {}×{}, e is {}×{}",
                    d.rows(),
                    d.cols(),
                    e.rows(),
                    e.cols()
                ));
            }
        }
    }
    Ok(())
}
