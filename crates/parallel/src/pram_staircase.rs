//! Row minima of staircase-Monge arrays on the simulated PRAM —
//! the paper's §2 contribution (Lemma 2.2, Theorem 2.3, Corollary 2.4).
//!
//! ## Algorithm (following Theorem 2.3)
//!
//! For a row range with `m` rows: sample every `s ≈ √m`-th row. For each
//! sampled row `S_g`, the *modified* row `R_g^t` zeroes in on the columns
//! the next sampled row can still see (`A^t`'s entries beyond
//! `f_{S_{g+1}}` become `∞`). Then:
//!
//! 1. **`A^t` row minima** via its decomposition into Monge strips
//!    (Figure 2.1): group columns by the distinct sampled boundaries;
//!    each strip (a prefix of sampled rows × one column segment) is fully
//!    finite, hence Monge, and solved by the Lemma 2.1 engine; per-row
//!    combination over covering strips gives `j^t_g`.
//! 2. **Un-modify** (Lemma 2.2's last paragraph): each sampled row
//!    rechecks the ≤ `n` entries that were turned to `∞`, recovering its
//!    original minimum `j^orig_g`.
//! 3. **Fill-in** (Lemma 2.2 / Figure 2.2): for a row `k` in the gap
//!    above `S_g`, the feasible positions are
//!    `[L_g, j^orig_g] ∪ [f_{S_g}, f_k)` where
//!    `L_g = max { j^t_l : l < g, j^t_l < f_{S_g} }` — the *bracketing*
//!    structure: `L_g` is exactly the nearest dominating sampled minimum,
//!    which the paper computes with ANSV. The left part is a feasible
//!    Monge region (solved by the Lemma 2.1 engine); the right part is a
//!    feasible staircase region, recursed upon (`T(m) = T(√m) + O(·)`).
//! 4. Per-row combination of the two candidates.
//!
//! The recursion bottoms out at gaps of `O(√m)` rows solved directly.

use crate::pram_monge::{Engine, MinPrimitive, PramRun};
use crate::tuning::Tuning;
use monge_core::array2d::Array2d;
use monge_core::value::Value;

type Cand<T> = Option<(T, usize)>;

use monge_core::tiebreak::merge_min_candidate as merge_candidate;

/// Row minima of a staircase-Monge array with boundary `f` on the
/// simulated PRAM, with explicit tuning (only
/// [`Tuning::pram_base_rows`] is consulted). Returns leftmost argmins
/// (rows whose finite prefix is empty report column 0).
pub fn pram_staircase_row_minima_with<T: Value, A: Array2d<T>>(
    a: &A,
    f: &[usize],
    prim: MinPrimitive,
    t: Tuning,
) -> PramRun {
    let (m, n) = (a.rows(), a.cols());
    assert_eq!(f.len(), m);
    assert!(n > 0);
    let mut eng = Engine::new(prim);
    let mut out: Vec<Cand<T>> = vec![None; m];
    if m > 0 {
        solve(&mut eng, a, f, 0, m, 0, n, &mut out, t);
    }
    PramRun {
        index: out.into_iter().map(|c| c.map_or(0, |(_, j)| j)).collect(),
        metrics: eng.pram.metrics().clone(),
        processors: n as u64,
    }
}

/// [`pram_staircase_row_minima_with`] with environment-seeded tuning.
pub fn pram_staircase_row_minima<T: Value, A: Array2d<T>>(
    a: &A,
    f: &[usize],
    prim: MinPrimitive,
) -> PramRun {
    pram_staircase_row_minima_with(a, f, prim, Tuning::from_env())
}

/// Solves rows `r0..r1` over columns `[c0, min(c1, f_i))`, merging each
/// row's candidate into `out`.
#[allow(clippy::too_many_arguments)]
fn solve<T: Value, A: Array2d<T>>(
    eng: &mut Engine<T>,
    a: &A,
    f: &[usize],
    r0: usize,
    mut r1: usize,
    c0: usize,
    c1: usize,
    out: &mut [Cand<T>],
    t: Tuning,
) {
    // Rows whose finite prefix does not reach c0 form a suffix; trim them.
    r1 = partition_point(r0, r1, |i| f[i] > c0);
    if r0 >= r1 || c0 >= c1 {
        return;
    }
    let m = r1 - r0;
    if m <= t.pram_base_rows.max(1) {
        // Base case: each row scans its own interval, all in parallel.
        eng.pram.fork();
        for k in r0..r1 {
            let hi = c1.min(f[k]);
            let (j, v) = eng.interval_min(a, k, c0, hi);
            merge_candidate(&mut out[k], v, j);
            eng.pram.branch_done();
        }
        eng.pram.join();
        return;
    }

    // ---- sampling -----------------------------------------------------
    let u = (m as f64).sqrt().ceil() as usize;
    let s = m.div_ceil(u);
    // Sampled rows; the last row of the range is always sampled so every
    // gap has a lower constraint.
    let mut samples: Vec<usize> = (r0..r1).skip(s - 1).step_by(s).collect();
    if samples.last() != Some(&(r1 - 1)) {
        samples.push(r1 - 1);
    }
    let su = samples.len();

    // Modified boundary of sampled row g: what the *next* sampled row can
    // still see (the A^t construction). The last sample keeps its own.
    let b: Vec<usize> = (0..su)
        .map(|g| {
            let next = if g + 1 < su {
                f[samples[g + 1]]
            } else {
                f[samples[g]]
            };
            c1.min(next).min(f[samples[g]])
        })
        .collect();

    // ---- step 1: A^t minima via Monge strip decomposition (Fig 2.1) ----
    // Column segment edges: c0 plus the distinct modified boundaries.
    let mut edges: Vec<usize> = b.iter().copied().filter(|&x| x > c0).collect();
    edges.push(c0);
    edges.sort_unstable();
    edges.dedup();
    // Strip for segment [edges[k], edges[k+1]): the prefix of samples
    // whose modified boundary covers the segment end.
    let mut jt: Vec<Cand<T>> = vec![None; su];
    eng.pram.fork();
    for w in edges.windows(2) {
        let (lo, hi) = (w[0], w[1]);
        // Samples with b_g >= hi (b is non-increasing, so a prefix).
        let cnt = partition_point(0, su, |g| b[g] >= hi);
        if cnt == 0 {
            continue;
        }
        // Monge strip: sampled rows 0..cnt × columns [lo, hi). Solve by
        // the Lemma 2.1 divide & conquer on the row-selected view.
        let view = monge_core::array2d::SelectRows::new(a, samples[..cnt].to_vec());
        let mut sub = vec![0usize; cnt];
        crate::pram_staircase::monge_rec(eng, &view, 0, cnt, lo, hi, &mut sub);
        for (g, &j) in sub.iter().enumerate() {
            merge_candidate(&mut jt[g], a.entry(samples[g], j), j);
        }
        eng.pram.branch_done();
    }
    eng.pram.join();

    // ---- step 2: un-modify (recover original sampled minima) -----------
    let mut jorig: Vec<Cand<T>> = jt.clone();
    eng.pram.fork();
    for g in 0..su {
        let lo = b[g].max(c0);
        let hi = c1.min(f[samples[g]]);
        if lo < hi {
            let (j, v) = eng.interval_min(a, samples[g], lo, hi);
            merge_candidate(&mut jorig[g], v, j);
            eng.pram.branch_done();
        }
    }
    eng.pram.join();
    for g in 0..su {
        if let Some((v, j)) = jorig[g] {
            merge_candidate(&mut out[samples[g]], v, j);
        }
    }

    // ---- step 3: fill in the gaps --------------------------------------
    // Gap g: the rows strictly between the previous sample and sample g.
    // Lower bracketing bound L_g (ANSV structure, computed as a running
    // prefix maximum over qualifying modified minima).
    eng.pram.fork();
    for g in 0..su {
        let gap_lo = if g == 0 { r0 } else { samples[g - 1] + 1 };
        let gap_hi = samples[g];
        if gap_lo >= gap_hi {
            continue;
        }
        let fs = f[samples[g]].min(c1);
        // L_g: the largest modified minimum among samples above the gap
        // that every gap row can still see (column < f at the gap's
        // bottom sample). This is the "bracketing" minimum of Lemma 2.2.
        let mut lg = c0;
        #[allow(clippy::needless_range_loop)] // l < g, a prefix of jt
        for l in 0..g {
            if let Some((_, j)) = jt[l] {
                if j < fs && j > lg {
                    lg = j;
                }
            }
        }
        // Feasible Monge region: [lg, j^orig_g] within the fully finite
        // column prefix.
        if let Some((_, jo)) = jorig[g] {
            if jo >= lg {
                let mut sub = vec![0usize; gap_hi - gap_lo];
                monge_rec_rows(eng, a, gap_lo, gap_hi, lg, jo + 1, &mut sub);
                for (k, &j) in sub.iter().enumerate() {
                    merge_candidate(&mut out[gap_lo + k], a.entry(gap_lo + k, j), j);
                }
            }
        }
        eng.pram.branch_done();
        // Feasible staircase region beyond the bottom sample's boundary:
        // recurse (this is the T(m) = T(√m) + O(·) recursion).
        if fs < c1 {
            solve(eng, a, f, gap_lo, gap_hi, fs, c1, out, t);
            eng.pram.branch_done();
        }
    }
    eng.pram.join();
}

/// Monge divide & conquer on a row-contiguous region of the original
/// array (all-finite by the caller's guarantee).
fn monge_rec_rows<T: Value, A: Array2d<T>>(
    eng: &mut Engine<T>,
    a: &A,
    r0: usize,
    r1: usize,
    c0: usize,
    c1: usize,
    out: &mut [usize],
) {
    monge_core::guard::checkpoint();
    if r0 >= r1 || c0 >= c1 {
        return;
    }
    let mid = r0 + (r1 - r0) / 2;
    let (best, _) = eng.interval_min(a, mid, c0, c1);
    out[mid - r0] = best;
    if r1 - r0 == 1 {
        return;
    }
    eng.pram.fork();
    {
        let (top, rest) = out.split_at_mut(mid - r0);
        let bot = &mut rest[1..];
        monge_rec_rows(eng, a, r0, mid, c0, best + 1, top);
        eng.pram.branch_done();
        monge_rec_rows(eng, a, mid + 1, r1, best, c1, bot);
        eng.pram.branch_done();
    }
    eng.pram.join();
}

/// Same divide & conquer on an arbitrary [`Array2d`] view with its own
/// row indexing (used for the sampled-row strips).
fn monge_rec<T: Value, A: Array2d<T>>(
    eng: &mut Engine<T>,
    a: &A,
    r0: usize,
    r1: usize,
    c0: usize,
    c1: usize,
    out: &mut [usize],
) {
    monge_core::guard::checkpoint();
    if r0 >= r1 || c0 >= c1 {
        return;
    }
    let mid = r0 + (r1 - r0) / 2;
    let (best, _) = eng.interval_min(a, mid, c0, c1);
    out[mid] = best;
    if r1 - r0 == 1 {
        return;
    }
    eng.pram.fork();
    monge_rec(eng, a, r0, mid, c0, best + 1, out);
    eng.pram.branch_done();
    monge_rec(eng, a, mid + 1, r1, best, c1, out);
    eng.pram.branch_done();
    eng.pram.join();
}

fn partition_point(lo: usize, hi: usize, pred: impl Fn(usize) -> bool) -> usize {
    let (mut lo, mut hi) = (lo, hi);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if pred(mid) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;
    use monge_core::generators::{
        apply_staircase, random_monge_dense, random_staircase_boundary,
        random_staircase_monge_dense,
    };
    use monge_core::staircase::{compute_boundary, staircase_row_minima_brute};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matches_brute_on_random_instances() {
        let mut rng = StdRng::seed_from_u64(90);
        for trial in 0..40 {
            let a = random_staircase_monge_dense(23, 19, &mut rng);
            let fb = compute_boundary(&a);
            let run = pram_staircase_row_minima(&a, &fb, MinPrimitive::DoublyLog);
            assert_eq!(
                run.index,
                staircase_row_minima_brute(&a, &fb),
                "trial {trial}"
            );
        }
    }

    #[test]
    fn matches_brute_under_every_primitive() {
        let mut rng = StdRng::seed_from_u64(91);
        let a = random_staircase_monge_dense(30, 30, &mut rng);
        let fb = compute_boundary(&a);
        let want = staircase_row_minima_brute(&a, &fb);
        for prim in [
            MinPrimitive::Tree,
            MinPrimitive::DoublyLog,
            MinPrimitive::Constant,
            MinPrimitive::Combining,
        ] {
            let run = pram_staircase_row_minima(&a, &fb, prim);
            assert_eq!(run.index, want, "{prim:?}");
        }
    }

    #[test]
    fn fully_finite_array() {
        let mut rng = StdRng::seed_from_u64(92);
        let a = random_monge_dense(40, 25, &mut rng);
        let fb = vec![25usize; 40];
        let run = pram_staircase_row_minima(&a, &fb, MinPrimitive::DoublyLog);
        assert_eq!(run.index, monge_core::monge::brute_row_minima(&a));
    }

    #[test]
    fn steep_staircase() {
        let mut rng = StdRng::seed_from_u64(93);
        let n = 32;
        let base = random_monge_dense(n, n, &mut rng);
        let fb: Vec<usize> = (0..n).map(|i| n - i).collect();
        let a = apply_staircase(&base, &fb);
        let run = pram_staircase_row_minima(&a, &fb, MinPrimitive::DoublyLog);
        assert_eq!(run.index, staircase_row_minima_brute(&a, &fb));
    }

    #[test]
    fn rectangular_shapes() {
        let mut rng = StdRng::seed_from_u64(94);
        for &(m, n) in &[(60usize, 9usize), (9, 60), (1, 30), (30, 1)] {
            let base = random_monge_dense(m, n, &mut rng);
            let fb = random_staircase_boundary(m, n, &mut rng);
            let a = apply_staircase(&base, &fb);
            let run = pram_staircase_row_minima(&a, &fb, MinPrimitive::DoublyLog);
            assert_eq!(run.index, staircase_row_minima_brute(&a, &fb), "{m}x{n}");
        }
    }

    #[test]
    fn steps_are_polylogarithmic() {
        let mut rng = StdRng::seed_from_u64(95);
        let n = 256usize;
        let a = random_staircase_monge_dense(n, n, &mut rng);
        let fb = compute_boundary(&a);
        let run = pram_staircase_row_minima(&a, &fb, MinPrimitive::Constant);
        let lg = 64 - (n as u64).leading_zeros() as u64;
        assert!(
            run.metrics.steps <= 30 * lg * lg,
            "steps = {} for n = {n}",
            run.metrics.steps
        );
    }
}
