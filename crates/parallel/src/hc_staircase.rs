//! Row minima of staircase-Monge arrays on the simulated hypercube —
//! Theorem 3.3.
//!
//! The feasible-region divide & conquer of the staircase algorithm is
//! executed level by level on the network, reusing the
//! [`crate::hc_monge`] executor. Staircase levels are harsher than plain
//! Monge levels — block intervals of one level may overlap arbitrarily
//! (Figure 2.2's region families) and block rows are not sorted with
//! their intervals — exactly the data-movement complications the paper
//! highlights ("we must deal more carefully with the issue of processor
//! allocation … and data movement through the hypercube"). The
//! gather-based executor absorbs both: candidates are laid out
//! consecutively regardless of interval overlap, and the operand
//! gathers' sorting tolerates unsorted rows.

use crate::hc_monge::{Block, HcEngine, HcRun};
use crate::vector_array::VectorArray;
use monge_core::value::Value;
use monge_hypercube::topology::EmulationCost;

/// A staircase task: rows `r0..r1`, feasible columns `[c0, min(c1, f_i))`.
#[derive(Clone, Copy, Debug)]
struct Task {
    r0: usize,
    r1: usize,
    c0: usize,
    c1: usize,
}

/// Row minima of the staircase-Monge array `a[i,j] = g(v[i], w[j])` for
/// `j < f[i]` (`∞` beyond) on the simulated hypercube. Returns leftmost
/// argmins over each row's finite prefix.
pub fn hc_staircase_row_minima<T: Value, G: Fn(T, T) -> T + Sync>(
    a: &VectorArray<T, G>,
    f: &[usize],
) -> HcRun {
    let (m, n) = (a.v.len(), a.w.len());
    assert_eq!(f.len(), m);
    let mut eng = HcEngine::new(&a.v, &a.w);
    let mut best: Vec<Option<(T, usize)>> = vec![None; m];

    let mut tasks = vec![Task {
        r0: 0,
        r1: m,
        c0: 0,
        c1: n,
    }];
    while !tasks.is_empty() {
        monge_core::guard::checkpoint();
        // Trim each task's rows to those whose finite prefix reaches c0
        // (they form a suffix because f is non-increasing).
        let mut level: Vec<Task> = Vec::with_capacity(tasks.len());
        for mut t in tasks.drain(..) {
            t.r1 = partition_point(t.r0, t.r1, |i| f[i] > t.c0);
            if t.r0 < t.r1 && t.c0 < t.c1 {
                level.push(t);
            }
        }
        if level.is_empty() {
            break;
        }
        let blocks: Vec<Block> = level
            .iter()
            .map(|t| {
                let mid = t.r0 + (t.r1 - t.r0) / 2;
                Block {
                    row: mid,
                    lo: t.c0,
                    hi: t.c1.min(f[mid]),
                }
            })
            .collect();
        let minima = eng.level_minima(&a.g, &blocks, false);
        for (k, t) in level.iter().enumerate() {
            let mid = t.r0 + (t.r1 - t.r0) / 2;
            let (j, v) = minima[k];
            merge_candidate(&mut best[mid], v, j);
            // Children (see monge_core::staircase for the region proof):
            if mid > t.r0 {
                tasks.push(Task {
                    r0: t.r0,
                    r1: mid,
                    c0: t.c0,
                    c1: j + 1,
                });
                if f[mid] < t.c1 {
                    tasks.push(Task {
                        r0: t.r0,
                        r1: mid,
                        c0: f[mid],
                        c1: t.c1,
                    });
                }
            }
            if mid + 1 < t.r1 {
                let cut = partition_point(mid + 1, t.r1, |i| f[i] > j);
                if mid + 1 < cut {
                    tasks.push(Task {
                        r0: mid + 1,
                        r1: cut,
                        c0: j,
                        c1: t.c1,
                    });
                }
                if cut < t.r1 {
                    tasks.push(Task {
                        r0: cut,
                        r1: t.r1,
                        c0: t.c0,
                        c1: j + 1,
                    });
                }
            }
        }
    }

    let metrics = eng.hc.metrics().clone();
    let emulation = EmulationCost::price(&metrics, eng.hc.dim());
    HcRun {
        index: best.into_iter().map(|c| c.map_or(0, |(_, j)| j)).collect(),
        metrics,
        emulation,
    }
}

use monge_core::tiebreak::merge_min_candidate as merge_candidate;

fn partition_point(lo: usize, hi: usize, pred: impl Fn(usize) -> bool) -> usize {
    let (mut lo, mut hi) = (lo, hi);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if pred(mid) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;
    use monge_core::array2d::{Array2d, Dense};
    use monge_core::staircase::staircase_row_minima_brute;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    type TransportArray = VectorArray<i64, fn(i64, i64) -> i64>;

    /// Sorted-transport staircase instance.
    fn instance(m: usize, n: usize, seed: u64) -> (TransportArray, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut v: Vec<i64> = (0..m).map(|_| rng.random_range(0..10_000)).collect();
        let mut w: Vec<i64> = (0..n).map(|_| rng.random_range(0..10_000)).collect();
        v.sort_unstable();
        w.sort_unstable();
        let mut f: Vec<usize> = (0..m).map(|_| rng.random_range(1..=n)).collect();
        f.sort_unstable_by(|a, b| b.cmp(a));
        let g: fn(i64, i64) -> i64 = |x, y| (x - y).abs();
        (VectorArray::new(v, w, g), f)
    }

    fn masked(a: &VectorArray<i64, fn(i64, i64) -> i64>, f: &[usize]) -> Dense<i64> {
        Dense::tabulate(a.rows(), a.cols(), |i, j| {
            if j < f[i] {
                a.entry(i, j)
            } else {
                <i64 as monge_core::Value>::INFINITY
            }
        })
    }

    #[test]
    fn matches_brute_on_random_instances() {
        for seed in 0..15u64 {
            let (a, f) = instance(17, 13, seed);
            let run = hc_staircase_row_minima(&a, &f);
            let dense = masked(&a, &f);
            assert_eq!(
                run.index,
                staircase_row_minima_brute(&dense, &f),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn fully_finite_reduces_to_monge() {
        let (a, _) = instance(16, 16, 99);
        let f = vec![16usize; 16];
        let run = hc_staircase_row_minima(&a, &f);
        assert_eq!(run.index, monge_core::monge::brute_row_minima(&a));
    }

    #[test]
    fn steep_staircase() {
        let (a, _) = instance(24, 24, 7);
        let f: Vec<usize> = (0..24).map(|i| 24 - i).collect();
        let run = hc_staircase_row_minima(&a, &f);
        let dense = masked(&a, &f);
        assert_eq!(run.index, staircase_row_minima_brute(&dense, &f));
    }

    #[test]
    fn infinity_is_never_selected() {
        let (a, f) = instance(20, 11, 3);
        let run = hc_staircase_row_minima(&a, &f);
        for (i, &j) in run.index.iter().enumerate() {
            assert!(j < f[i], "row {i} picked an infinite column");
        }
        let _ = <i64 as monge_core::Value>::INFINITY.is_pos_infinite();
    }
}
