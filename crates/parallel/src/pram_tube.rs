//! Tube maxima / minima of Monge-composite arrays on the simulated PRAM —
//! the Table 1.3 engines.
//!
//! Following [AP89a, AALM88], every plane `F_i[k][j] = d[i,j] + e[j,k]`
//! of the composite array is a Monge array in `(k, j)`; the engine runs
//! the divide-and-conquer row search on all `p` planes as parallel
//! branches. With the `Constant` primitive the measured critical path is
//! `O(lg n)` (the CREW row of Table 1.3); with `DoublyLog` it is
//! `O(lg n · lg lg n)` using `n²`-processor budgets. (Atallah's
//! `Θ(lg lg n)` CRCW bound \[Ata89\] uses machinery beyond this extended
//! abstract; we report our engine's measured shape instead — see
//! DESIGN.md §3.)

use crate::pram_monge::{Engine, MinPrimitive};
use monge_core::array2d::Array2d;
use monge_core::tube::{plane, TubeExtrema};
use monge_core::value::Value;
use monge_pram::Metrics;

/// Result of a PRAM tube search.
#[derive(Clone, Debug)]
pub struct PramTubeRun<T> {
    /// Per-tube argopt and values.
    pub extrema: TubeExtrema<T>,
    /// Simulator metrics.
    pub metrics: Metrics,
    /// Analytical processor budget (`p·(q + r)`).
    pub processors: u64,
}

/// Tube minima (`(min,+)` product) on the PRAM.
pub fn pram_tube_minima<T: Value, A: Array2d<T>, B: Array2d<T>>(
    d: &A,
    e: &B,
    prim: MinPrimitive,
) -> PramTubeRun<T> {
    pram_tube(d, e, prim, false)
}

/// Tube maxima (`(max,+)` product) on the PRAM.
pub fn pram_tube_maxima<T: Value, A: Array2d<T>, B: Array2d<T>>(
    d: &A,
    e: &B,
    prim: MinPrimitive,
) -> PramTubeRun<T> {
    pram_tube(d, e, prim, true)
}

fn pram_tube<T: Value, A: Array2d<T>, B: Array2d<T>>(
    d: &A,
    e: &B,
    prim: MinPrimitive,
    maxima: bool,
) -> PramTubeRun<T> {
    assert_eq!(d.cols(), e.rows(), "inner dimensions disagree");
    let (p, q, r) = (d.rows(), d.cols(), e.cols());
    assert!(q > 0);
    let mut eng: Engine<T> = Engine::new(prim);
    if maxima {
        // The reverse-and-negate reduction needs rightmost-minima tie
        // handling (see pram_monge::Engine::mirror).
        eng.mirror = Some(q);
    }
    let mut index = vec![0usize; p * r];
    let mut value = vec![T::ZERO; p * r];

    eng.pram.fork();
    for i in 0..p {
        let pl = plane(d, e, i);
        let out = &mut index[i * r..(i + 1) * r];
        if maxima {
            // Leftmost maxima via reverse + negate (mirrored indices).
            let t = monge_core::array2d::Negate(monge_core::array2d::ReverseCols(&pl));
            rec(&mut eng, &t, 0, r, 0, q, out);
            for j in out.iter_mut() {
                *j = q - 1 - *j;
            }
        } else {
            rec(&mut eng, &pl, 0, r, 0, q, out);
        }
        for (k, &j) in out.iter().enumerate() {
            value[i * r + k] = d.entry(i, j).add(e.entry(j, k));
        }
        eng.pram.branch_done();
    }
    eng.pram.join();

    PramTubeRun {
        extrema: TubeExtrema { p, r, index, value },
        metrics: eng.pram.metrics().clone(),
        processors: (p * (q + r)) as u64,
    }
}

fn rec<T: Value, A: Array2d<T>>(
    eng: &mut Engine<T>,
    a: &A,
    r0: usize,
    r1: usize,
    c0: usize,
    c1: usize,
    out: &mut [usize],
) {
    monge_core::guard::checkpoint();
    if r0 >= r1 || c0 >= c1 {
        return;
    }
    let mid = r0 + (r1 - r0) / 2;
    let (best, _) = eng.interval_min(a, mid, c0, c1);
    out[mid] = best;
    if r1 - r0 == 1 {
        return;
    }
    eng.pram.fork();
    rec(eng, a, r0, mid, c0, best + 1, out);
    eng.pram.branch_done();
    rec(eng, a, mid + 1, r1, best, c1, out);
    eng.pram.branch_done();
    eng.pram.join();
}

#[cfg(test)]
mod tests {
    use super::*;
    use monge_core::generators::random_monge_dense;
    use monge_core::tube::{tube_maxima_brute, tube_minima_brute};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn minima_matches_brute() {
        let mut rng = StdRng::seed_from_u64(100);
        for &(p, q, r) in &[(1usize, 1usize, 1usize), (6, 8, 5), (12, 12, 12)] {
            let d = random_monge_dense(p, q, &mut rng);
            let e = random_monge_dense(q, r, &mut rng);
            let run = pram_tube_minima(&d, &e, MinPrimitive::DoublyLog);
            assert_eq!(run.extrema, tube_minima_brute(&d, &e), "{p}x{q}x{r}");
        }
    }

    #[test]
    fn maxima_matches_brute() {
        let mut rng = StdRng::seed_from_u64(101);
        for &(p, q, r) in &[(5usize, 9usize, 7usize), (10, 4, 10)] {
            let d = random_monge_dense(p, q, &mut rng);
            let e = random_monge_dense(q, r, &mut rng);
            let run = pram_tube_maxima(&d, &e, MinPrimitive::Constant);
            assert_eq!(run.extrema, tube_maxima_brute(&d, &e), "{p}x{q}x{r}");
        }
    }

    #[test]
    fn critical_path_is_one_plane() {
        // All planes run as parallel branches: steps should match a
        // single-plane run, not p of them.
        let mut rng = StdRng::seed_from_u64(102);
        let d = random_monge_dense(16, 16, &mut rng);
        let e = random_monge_dense(16, 16, &mut rng);
        let run_all = pram_tube_minima(&d, &e, MinPrimitive::Constant);
        let d1 = random_monge_dense(1, 16, &mut rng);
        let run_one = pram_tube_minima(&d1, &e, MinPrimitive::Constant);
        assert!(run_all.metrics.steps <= 2 * run_one.metrics.steps + 16);
        assert!(run_all.metrics.work >= 8 * run_one.metrics.work);
    }
}
