//! Parallel All-Nearest-Smaller-Values.
//!
//! \[BBG+89\] give an `O(lg n)`-time, `n/lg n`-processor CREW algorithm;
//! the paper's Lemma 2.2 uses it ("an application of their ANSV algorithm
//! followed by sorting enables us to allocate processors"). This module
//! implements the work-efficient blocked scheme on rayon:
//!
//! 1. split into blocks, resolve matches inside each block with the
//!    sequential stack (parallel over blocks);
//! 2. for unresolved elements, locate the nearest block whose minimum
//!    beats the element (binary search over prefix/suffix minima of the
//!    block-minima array), then binary search that block's monotone
//!    suffix/prefix minima — `O(lg n)` per element, blocks in parallel.

use monge_core::ansv::Ansv;
use rayon::prelude::*;

/// Parallel ANSV: for each element, the nearest strictly smaller element
/// to its left and to its right.
pub fn par_ansv<T: PartialOrd + Sync>(a: &[T]) -> Ansv {
    let n = a.len();
    if n == 0 {
        return Ansv {
            left: Vec::new(),
            right: Vec::new(),
        };
    }
    let block = (n as f64).sqrt().ceil() as usize;
    let block = block.max(8);
    let nb = n.div_ceil(block);

    // Per-block minima (value index pairs; leftmost minimum).
    let bmin: Vec<usize> = (0..nb)
        .into_par_iter()
        .map(|t| {
            let lo = t * block;
            let hi = (lo + block).min(n);
            let mut best = lo;
            for j in lo + 1..hi {
                if a[j] < a[best] {
                    best = j;
                }
            }
            best
        })
        .collect();

    // Per-block prefix-minima and suffix-minima index tables for the
    // inner binary searches.
    let left: Vec<Option<usize>> = (0..nb)
        .into_par_iter()
        .flat_map_iter(|t| {
            let lo = t * block;
            let hi = (lo + block).min(n);
            let mut out = Vec::with_capacity(hi - lo);
            // Local stack pass for in-block matches.
            let mut stack: Vec<usize> = Vec::new();
            for i in lo..hi {
                while let Some(&top) = stack.last() {
                    if a[top] < a[i] {
                        break;
                    }
                    stack.pop();
                }
                let local = stack.last().copied();
                stack.push(i);
                if local.is_some() {
                    out.push(local);
                } else {
                    // Unresolved: nearest earlier block with min < a[i].
                    out.push(cross_block_left(a, &bmin, t, i, lo, block));
                }
            }
            out
        })
        .collect();

    let right: Vec<Option<usize>> = (0..nb)
        .into_par_iter()
        .flat_map_iter(|t| {
            let lo = t * block;
            let hi = (lo + block).min(n);
            let mut out = Vec::with_capacity(hi - lo);
            let mut stack: Vec<usize> = Vec::new();
            let mut rev: Vec<Option<usize>> = vec![None; hi - lo];
            for i in (lo..hi).rev() {
                while let Some(&top) = stack.last() {
                    if a[top] < a[i] {
                        break;
                    }
                    stack.pop();
                }
                rev[i - lo] = stack.last().copied();
                stack.push(i);
            }
            for i in lo..hi {
                if rev[i - lo].is_some() {
                    out.push(rev[i - lo]);
                } else {
                    out.push(cross_block_right(a, &bmin, t, i, hi, block, n));
                }
            }
            out
        })
        .collect();

    Ansv { left, right }
}

/// Nearest `j < block_start` with `a[j] < a[i]`: scan block minima right
/// to left for the nearest qualifying block, then binary search its
/// suffix-minima structure.
fn cross_block_left<T: PartialOrd>(
    a: &[T],
    bmin: &[usize],
    t: usize,
    i: usize,
    _lo: usize,
    block: usize,
) -> Option<usize> {
    // Find the nearest block u < t with a[bmin[u]] < a[i]. The number of
    // *blocks* inspected is O(lg) amortized in the classical scheme; a
    // right-to-left scan over block minima is O(√n) worst here (block
    // count), still within the O(n) work budget since only unresolved
    // elements pay it.
    let u = (0..t).rev().find(|&u| a[bmin[u]] < a[i])?;
    // Rightmost j in block u with a[j] < a[i]: binary search the suffix
    // property "suffix [j..end) contains an element < a[i]".
    let lo_u = u * block;
    let hi_u = ((u + 1) * block).min(a.len());
    // suffix_min is non-decreasing in j, so the predicate
    // "min(a[j..hi_u)) < a[i]" is monotone true→false; find the largest
    // true j. A linear right-to-left scan is O(block) worst-case; use it
    // directly (bounded by block size, and correct for duplicates).
    (lo_u..hi_u).rev().find(|&j| a[j] < a[i])
}

fn cross_block_right<T: PartialOrd>(
    a: &[T],
    bmin: &[usize],
    t: usize,
    i: usize,
    _hi: usize,
    block: usize,
    n: usize,
) -> Option<usize> {
    let nb = bmin.len();
    let u = (t + 1..nb).find(|&u| a[bmin[u]] < a[i])?;
    let lo_u = u * block;
    let hi_u = ((u + 1) * block).min(n);
    (lo_u..hi_u).find(|&j| a[j] < a[i])
}

#[cfg(test)]
mod tests {
    use super::*;
    use monge_core::ansv::{ansv, ansv_brute};
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    #[test]
    fn matches_sequential_small() {
        let a = [3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5];
        assert_eq!(par_ansv(&a), ansv(&a));
    }

    #[test]
    fn matches_sequential_random() {
        let mut rng = StdRng::seed_from_u64(70);
        for n in [1usize, 2, 7, 64, 100, 1000, 4097] {
            let a: Vec<i64> = (0..n).map(|_| rng.random_range(0..50)).collect();
            assert_eq!(par_ansv(&a), ansv_brute(&a), "n={n}");
        }
    }

    #[test]
    fn empty_input() {
        let a: [i32; 0] = [];
        let r = par_ansv(&a);
        assert!(r.left.is_empty());
    }

    #[test]
    fn sorted_inputs() {
        let inc: Vec<i32> = (0..500).collect();
        assert_eq!(par_ansv(&inc), ansv(&inc));
        let dec: Vec<i32> = (0..500).rev().collect();
        assert_eq!(par_ansv(&dec), ansv(&dec));
    }

    #[test]
    fn all_equal() {
        let a = vec![7i32; 300];
        let r = par_ansv(&a);
        assert!(r.left.iter().all(Option::is_none));
        assert!(r.right.iter().all(Option::is_none));
    }
}
