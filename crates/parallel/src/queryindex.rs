//! Dispatcher wiring for the submatrix query index: build a
//! [`QueryIndex`] from a rows [`Problem`] under the guarded layer's
//! validation / deadline / panic-containment contract, with the build
//! instrumented into a [`Telemetry`].
//!
//! The index itself lives in [`monge_core::queryindex`]; this module is
//! the serving-stack entry point mirroring `solve_guarded`:
//!
//! * the structural promise is validated per [`GuardPolicy`] before any
//!   preprocessing — but unlike a solve, a violated promise cannot be
//!   quarantined onto a brute backend (there is no per-query brute path
//!   inside an index), so both violation actions fail the build with
//!   [`SolveError::StructureViolation`];
//! * the build runs under `catch_unwind` with the policy's deadline
//!   installed as a cooperative [`CancelToken`] — the index build loops
//!   call `guard::checkpoint`, so an expired budget surfaces as
//!   [`SolveError::DeadlineExceeded`], not a hang;
//! * the returned [`Telemetry`] carries the build's evaluation count
//!   (exactly one evaluation per source entry), an `"index_build"`
//!   phase, and the index accounting fields (`index_builds`,
//!   `index_bytes`, `index_breakpoints`).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

use monge_core::guard::{
    payload_to_string, with_cancellation, Attempt, AttemptOutcome, CancelToken, Cancelled,
    GuardOutcome, GuardPolicy, SolveError,
};
use monge_core::problem::{Metered, Problem, Structure, Telemetry};
use monge_core::queryindex::QueryIndex;
use monge_core::value::Value;

use crate::dispatch::Dispatcher;
use crate::guarded::validate;

/// The [`Telemetry::backend`] label of index builds.
pub const QUERYINDEX: &str = "queryindex";

impl<T: Value> Dispatcher<T> {
    /// Preprocesses a rows problem's array into a [`QueryIndex`] under
    /// the default [`GuardPolicy`] (validation off, no deadline),
    /// discarding the build telemetry. See
    /// [`Dispatcher::build_index_guarded`].
    ///
    /// # Errors
    ///
    /// As for [`Dispatcher::build_index_guarded`].
    pub fn build_index(&self, problem: &Problem<'_, T>) -> Result<QueryIndex<T>, SolveError> {
        self.build_index_guarded(problem, &GuardPolicy::default())
            .map(|(ix, _)| ix)
    }

    /// Preprocesses a rows problem's array into a [`QueryIndex`] under
    /// `policy`: validation per the policy's mode, the build under
    /// `catch_unwind` with the policy deadline installed as a
    /// cooperative cancellation token.
    ///
    /// The problem's objective is irrelevant — the index always serves
    /// both [`QueryIndex::query_min`] and [`QueryIndex::query_max`] —
    /// and answers use the leftmost convention (smallest row, then
    /// smallest column, among optimal cells) regardless of the
    /// problem's tie rule.
    ///
    /// # Errors
    ///
    /// * [`SolveError::InvalidInput`] — not a rows problem, a
    ///   [`Structure::Plain`] promise, or an empty array.
    /// * [`SolveError::StructureViolation`] — validation found the
    ///   promise broken (under *either* violation action; an index over
    ///   a broken promise has no brute path to quarantine onto).
    /// * [`SolveError::DeadlineExceeded`] — the policy budget expired
    ///   at a build checkpoint.
    /// * [`SolveError::BackendPanic`] — the source array (or the
    ///   validator) panicked while being read.
    pub fn build_index_guarded(
        &self,
        problem: &Problem<'_, T>,
        policy: &GuardPolicy,
    ) -> Result<(QueryIndex<T>, Telemetry), SolveError> {
        let start = Instant::now();
        let (array, structure) = match *problem {
            Problem::Rows {
                array, structure, ..
            } => {
                if structure == Structure::Plain {
                    return Err(SolveError::InvalidInput {
                        reason: "query index requires a Monge or inverse-Monge promise".to_string(),
                    });
                }
                (array, structure)
            }
            _ => {
                return Err(SolveError::InvalidInput {
                    reason: format!(
                        "query indexes serve rows problems, not {:?}",
                        problem.kind()
                    ),
                })
            }
        };
        let token = policy.deadline.map(CancelToken::with_deadline);
        let mut outcome = GuardOutcome {
            validation: policy.validation,
            ..GuardOutcome::default()
        };

        let t0 = Instant::now();
        let validated = catch_unwind(AssertUnwindSafe(|| validate(problem, policy)));
        outcome.validation_nanos = t0.elapsed().as_nanos();
        match validated {
            Ok(Ok(())) => {}
            Ok(Err(witness)) => return Err(SolveError::StructureViolation(witness)),
            Err(payload) => {
                return Err(SolveError::BackendPanic {
                    backend: "validator",
                    payload: payload_to_string(&*payload),
                })
            }
        }

        let t_build = Instant::now();
        let metered = Metered::new(array);
        let attempt = catch_unwind(AssertUnwindSafe(|| match &token {
            Some(tok) => with_cancellation(tok, || QueryIndex::build(&metered, structure)),
            None => QueryIndex::build(&metered, structure),
        }));
        let build_nanos = t_build.elapsed().as_nanos();
        match attempt {
            Ok(Ok(ix)) => {
                outcome.attempts.push(Attempt {
                    backend: QUERYINDEX,
                    outcome: AttemptOutcome::Completed,
                });
                let mut tel = Telemetry {
                    backend: QUERYINDEX,
                    kind: Some(problem.kind()),
                    ..Telemetry::default()
                };
                tel.evaluations = metered.evaluations();
                tel.record_phase("index_build", build_nanos);
                tel.total_nanos = start.elapsed().as_nanos();
                tel.index_builds = 1;
                tel.index_bytes = ix.bytes();
                tel.index_breakpoints = ix.breakpoints();
                tel.guard = Some(outcome);
                Ok((ix, tel))
            }
            Ok(Err(e)) => Err(e),
            Err(payload) => {
                if payload.downcast_ref::<Cancelled>().is_some() {
                    Err(SolveError::DeadlineExceeded {
                        elapsed: start.elapsed(),
                        deadline: policy.deadline.unwrap_or_default(),
                    })
                } else {
                    Err(SolveError::BackendPanic {
                        backend: QUERYINDEX,
                        payload: payload_to_string(&*payload),
                    })
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    use monge_core::array2d::{Array2d, Dense, FnArray};
    use monge_core::problem::Objective;

    fn dispatcher() -> Dispatcher<i64> {
        Dispatcher::with_all_backends()
    }

    fn monge(m: usize, n: usize) -> Dense<i64> {
        Dense::tabulate(m, n, |i, j| {
            let d = i as i64 - j as i64;
            d * d + j as i64
        })
    }

    #[test]
    fn build_index_answers_like_brute() {
        let a = monge(12, 15);
        let p = Problem::rows(&a, Structure::Monge, Objective::Minimize);
        let ix = dispatcher().build_index(&p).unwrap();
        let ans = ix.query_min(3..9, 2..14).unwrap();
        let mut best = (i64::MAX, usize::MAX, usize::MAX);
        for i in 3..9 {
            for j in 2..14 {
                let v = a.entry(i, j);
                if (v, i, j) < best {
                    best = (v, i, j);
                }
            }
        }
        assert_eq!((ans.value, ans.row, ans.col), best);
    }

    #[test]
    fn telemetry_stamps_build_accounting() {
        let a = monge(10, 8);
        let p = Problem::rows(&a, Structure::Monge, Objective::Minimize);
        let (ix, tel) = dispatcher()
            .build_index_guarded(&p, &GuardPolicy::default())
            .unwrap();
        assert_eq!(tel.backend, QUERYINDEX);
        assert_eq!(tel.kind, Some(p.kind()));
        assert_eq!(tel.evaluations, 80, "one evaluation per source entry");
        assert_eq!(tel.index_builds, 1);
        assert_eq!(tel.index_bytes, ix.bytes());
        assert_eq!(tel.index_breakpoints, ix.breakpoints());
        assert!(tel.phases.iter().any(|ph| ph.name == "index_build"));
        let guard = tel.guard.expect("guarded build stamps an outcome");
        assert_eq!(
            guard.attempts,
            vec![Attempt {
                backend: QUERYINDEX,
                outcome: AttemptOutcome::Completed,
            }]
        );
    }

    #[test]
    fn rejects_plain_and_non_rows() {
        let a = monge(6, 6);
        let p = Problem::rows(&a, Structure::Plain, Objective::Minimize);
        assert!(matches!(
            dispatcher().build_index(&p),
            Err(SolveError::InvalidInput { .. })
        ));
        let boundary = vec![6usize; 6];
        let p = Problem::staircase_row_minima(&a, &boundary);
        assert!(matches!(
            dispatcher().build_index(&p),
            Err(SolveError::InvalidInput { .. })
        ));
    }

    #[test]
    fn validation_catches_a_broken_promise() {
        // Not Monge: one entry ruins the quadrangle inequality.
        let a = Dense::tabulate(6, 6, |i, j| if (i, j) == (2, 3) { -1000 } else { 0 });
        let p = Problem::rows(&a, Structure::Monge, Objective::Minimize);
        let policy = GuardPolicy::full_validation();
        assert!(matches!(
            dispatcher().build_index_guarded(&p, &policy),
            Err(SolveError::StructureViolation(_))
        ));
    }

    #[test]
    fn zero_deadline_aborts_the_build() {
        let a = monge(64, 64);
        let p = Problem::rows(&a, Structure::Monge, Objective::Minimize);
        let policy = GuardPolicy::default().with_deadline(Duration::ZERO);
        assert!(matches!(
            dispatcher().build_index_guarded(&p, &policy),
            Err(SolveError::DeadlineExceeded { .. })
        ));
    }

    #[test]
    fn panicking_source_is_contained() {
        let a = FnArray::new(4, 4, |i, _| {
            assert!(i < 2, "poisoned row");
            0i64
        });
        let p = Problem::rows(&a, Structure::Monge, Objective::Minimize);
        match dispatcher().build_index(&p) {
            Err(SolveError::BackendPanic { backend, payload }) => {
                assert_eq!(backend, QUERYINDEX);
                assert!(payload.contains("poisoned row"));
            }
            other => panic!("expected a contained panic, got {other:?}"),
        }
    }

    #[test]
    fn objective_of_the_problem_does_not_matter() {
        let a = monge(9, 9);
        let pmin = Problem::rows(&a, Structure::Monge, Objective::Minimize);
        let pmax = Problem::rows(&a, Structure::Monge, Objective::Maximize);
        let d = dispatcher();
        let a1 = d.build_index(&pmin).unwrap().query_max(1..7, 0..9).unwrap();
        let a2 = d.build_index(&pmax).unwrap().query_max(1..7, 0..9).unwrap();
        assert_eq!(a1, a2);
    }
}
