//! Multithreaded row minima of staircase-Monge arrays.
//!
//! Parallelization of the feasible-region divide & conquer (the
//! shared-memory analogue of the paper's Theorem 2.3): the middle row's
//! minimum splits the remaining rows into
//!
//! * an upper *Monge region* and an upper *staircase region* beyond the
//!   middle row's boundary (Figure 2.2's `F`-regions), whose candidates
//!   are combined by value, and
//! * two disjoint lower subproblems.
//!
//! Subproblems run under the task-counting
//! [`crate::runtime::join_tracked`]; the overlapping upper regions
//! write into separate buffers that are merged in parallel. Grain sizes
//! come from the [`Tuning`] value threaded through every call, and all
//! scratch (scan buffers, the upper-region merge buffer, fork-boundary
//! checkouts) comes from the thread-local arena of
//! [`monge_core::scratch`].

use crate::rayon_monge::interval_argmin;
use crate::runtime::join_tracked;
use crate::tuning::Tuning;
use monge_core::array2d::Array2d;
use monge_core::scratch::{with_scratch, with_scratch2};
use monge_core::tiebreak::merge_min_candidate as merge_candidate;
use monge_core::value::Value;

type Cand<T> = Option<(T, usize)>;

/// Parallel leftmost row minima of a staircase-Monge array with boundary
/// `f` (see [`monge_core::staircase::compute_boundary`]), with explicit
/// tuning.
pub fn par_staircase_row_minima_with<T: Value, A: Array2d<T>>(
    a: &A,
    f: &[usize],
    t: Tuning,
) -> Vec<usize> {
    let m = a.rows();
    assert_eq!(f.len(), m);
    if m == 0 {
        return Vec::new();
    }
    assert!(a.cols() > 0);
    with_scratch2(|best: &mut Vec<Cand<T>>, scratch: &mut Vec<T>| {
        best.clear();
        best.resize(m, None);
        rec(a, f, 0, m, 0, a.cols(), best, scratch, t);
        best.iter().map(|b| b.map_or(0, |(_, j)| j)).collect()
    })
}

/// [`par_staircase_row_minima_with`] with environment-seeded tuning.
pub fn par_staircase_row_minima<T: Value, A: Array2d<T>>(a: &A, f: &[usize]) -> Vec<usize> {
    par_staircase_row_minima_with(a, f, Tuning::from_env())
}

/// `out` covers rows `r0..r1` (index `i - r0`).
#[allow(clippy::too_many_arguments)]
fn rec<T: Value, A: Array2d<T>>(
    a: &A,
    f: &[usize],
    r0: usize,
    mut r1: usize,
    c0: usize,
    c1: usize,
    out: &mut [Cand<T>],
    scratch: &mut Vec<T>,
    t: Tuning,
) {
    monge_core::guard::checkpoint();
    r1 = partition_point(r0, r1, |i| f[i] > c0);
    if r0 >= r1 || c0 >= c1 {
        return;
    }
    let mid = r0 + (r1 - r0) / 2;
    let hi = c1.min(f[mid]);
    // Batched scan of the middle row (parallel chunks when wide).
    let (best, best_v) = interval_argmin(a, mid, c0, hi, scratch, t);
    merge_candidate(&mut out[mid - r0], best_v, best);

    let cut = partition_point(mid + 1, r1, |i| f[i] > best);
    let parallel = r1 - r0 > t.seq_rows.max(1);

    let (above, rest) = out.split_at_mut(mid - r0);
    let below = &mut rest[1..];
    let (below_hi, below_lo) = below.split_at_mut(cut - (mid + 1));

    let upper = |above: &mut [Cand<T>], scratch: &mut Vec<T>| {
        // Monge region left of the middle minimum.
        rec(a, f, r0, mid, c0, best + 1, above, scratch, t);
        // Staircase region beyond the middle row's boundary, merged in.
        if f[mid] < c1 {
            with_scratch(|tmp: &mut Vec<Cand<T>>| {
                tmp.clear();
                tmp.resize(mid - r0, None);
                rec(a, f, r0, mid, f[mid], c1, tmp, scratch, t);
                for (slot, cand) in above.iter_mut().zip(tmp.iter()) {
                    if let Some((v, j)) = *cand {
                        merge_candidate(slot, v, j);
                    }
                }
            });
        }
    };
    let lower = |below_hi: &mut [Cand<T>], below_lo: &mut [Cand<T>], scratch: &mut Vec<T>| {
        if parallel {
            join_tracked(
                || with_scratch(|s: &mut Vec<T>| rec(a, f, mid + 1, cut, best, c1, below_hi, s, t)),
                || with_scratch(|s: &mut Vec<T>| rec(a, f, cut, r1, c0, best + 1, below_lo, s, t)),
            );
        } else {
            rec(a, f, mid + 1, cut, best, c1, below_hi, scratch, t);
            rec(a, f, cut, r1, c0, best + 1, below_lo, scratch, t);
        }
    };

    if parallel {
        join_tracked(
            || with_scratch(|s: &mut Vec<T>| upper(above, s)),
            || with_scratch(|s: &mut Vec<T>| lower(below_hi, below_lo, s)),
        );
    } else {
        upper(above, scratch);
        lower(below_hi, below_lo, scratch);
    }
}

fn partition_point(lo: usize, hi: usize, pred: impl Fn(usize) -> bool) -> usize {
    let (mut lo, mut hi) = (lo, hi);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if pred(mid) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;
    use monge_core::generators::{
        apply_staircase, random_monge_dense, random_staircase_boundary,
        random_staircase_monge_dense,
    };
    use monge_core::staircase::{
        compute_boundary, staircase_row_minima, staircase_row_minima_brute,
    };
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matches_sequential_on_random_instances() {
        let mut rng = StdRng::seed_from_u64(50);
        for _ in 0..30 {
            let a = random_staircase_monge_dense(37, 23, &mut rng);
            let f = compute_boundary(&a);
            assert_eq!(
                par_staircase_row_minima(&a, &f),
                staircase_row_minima(&a, &f)
            );
        }
    }

    #[test]
    fn large_instance_crosses_parallel_threshold() {
        let mut rng = StdRng::seed_from_u64(51);
        let base = random_monge_dense(300, 200, &mut rng);
        let f = random_staircase_boundary(300, 200, &mut rng);
        let a = apply_staircase(&base, &f);
        assert_eq!(
            par_staircase_row_minima(&a, &f),
            staircase_row_minima_brute(&a, &f)
        );
    }

    #[test]
    fn steep_staircase_parallel() {
        let mut rng = StdRng::seed_from_u64(52);
        let n = 128;
        let base = random_monge_dense(n, n, &mut rng);
        let f: Vec<usize> = (0..n).map(|i| n - i).collect();
        let a = apply_staircase(&base, &f);
        assert_eq!(
            par_staircase_row_minima(&a, &f),
            staircase_row_minima_brute(&a, &f)
        );
    }

    #[test]
    fn plateau_wider_than_cutoff_stays_leftmost() {
        // All-equal rows force every chunk of the parallel scan to tie;
        // the leftmost column must still win (mirrors the rayon_monge
        // plateau regression for the staircase engine).
        let n = Tuning::from_env().seq_scan * 2 + 5;
        let a = monge_core::array2d::Dense::filled(3, n, 7i64);
        let f = vec![n; 3];
        assert_eq!(par_staircase_row_minima(&a, &f), vec![0; 3]);
    }

    #[test]
    fn fully_finite_reduces_to_monge() {
        let mut rng = StdRng::seed_from_u64(53);
        let a = random_monge_dense(80, 90, &mut rng);
        let f = vec![90usize; 80];
        assert_eq!(
            par_staircase_row_minima(&a, &f),
            monge_core::monge::brute_row_minima(&a)
        );
    }

    #[test]
    fn degenerate_cutoffs_still_agree_with_sequential() {
        let t = Tuning {
            seq_scan: 1,
            seq_rows: 1,
            ..Tuning::DEFAULT
        };
        let mut rng = StdRng::seed_from_u64(54);
        let a = random_staircase_monge_dense(41, 29, &mut rng);
        let f = compute_boundary(&a);
        assert_eq!(
            par_staircase_row_minima_with(&a, &f, t),
            staircase_row_minima(&a, &f)
        );
    }
}
