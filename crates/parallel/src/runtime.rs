//! The parallel execution runtime: scratch arenas + grain calibration.
//!
//! Two ingredients turn the divide & conquer engines in this crate
//! into an allocation-free, self-tuning runtime:
//!
//! * **Scratch arenas** — the thread-local grow-only buffer pools of
//!   [`monge_core::scratch`], re-exported here ([`with_scratch`],
//!   [`with_scratch2`]). Every recursion leaf and every rayon task
//!   checks its scan buffer out of the worker thread's pool instead of
//!   allocating, so steady-state searches perform zero heap
//!   allocations (the `alloc_free` integration test pins this down
//!   with a counting global allocator).
//! * **Grain calibration** — [`calibrate`] replaces guessed cutoffs
//!   with measured ones: it times a few row scans of the array at
//!   hand, derives the per-entry evaluation cost, and sizes the
//!   [`Tuning`] cutoffs so each rayon task does roughly
//!   [`TARGET_TASK_NANOS`] (~20 µs) of work. Cheap dense rows get
//!   coarse grains; expensive DIST/generator rows get fine grains.
//!
//! ## Calibration model
//!
//! Let `c` be the measured cost of one entry evaluation in
//! nanoseconds. A parallel interval scan splits `[lo, hi)` into
//! chunks of `seq_scan` columns, each costing `c · seq_scan`, so
//!
//! ```text
//! seq_scan = TARGET_TASK_NANOS / c           (clamped to [64, 2^20])
//! ```
//!
//! A sequential leaf of the row recursion over `r` rows touches about
//! `n/m + lg m` entries per row (the column intervals telescope across
//! the leaf, and each level of the binary row split rescans a middle
//! row), so
//!
//! ```text
//! seq_rows = TARGET_TASK_NANOS / (c · (n/m + lg m))   (clamped to [4, 4096])
//! ```
//!
//! Calibration also probes the kernel choice: when the `simd` feature
//! is active and the CPU supports it, it times the scalar blocked scan
//! against the vector lane kernel on a sample row and pins
//! [`Tuning::kernel`] to `Scalar` if vectorization loses (leaving
//! `Auto` — SIMD on — otherwise).
//!
//! The result is then overlaid with any `MONGE_*` environment
//! variables ([`Tuning::env_overlay`]), preserving the precedence
//! documented in [`crate::tuning`]: per-call values beat the
//! environment, which beats the autotune cache, which beats
//! calibration, which beats the built-in defaults.
//!
//! Calibration is the *one-shot, per-process* layer: it never touches
//! disk and never compares whole backends. The persistent autotuner
//! ([`crate::autotune`]) sits above it — measuring candidate
//! `(backend, tuning, kernel)` configurations per problem family and
//! remembering the winners across processes — and uses `calibrate`'s
//! output both as one of its candidate tunings and as the fallback
//! for every call the table cannot answer.

use crate::tuning::Tuning;
use monge_core::array2d::Array2d;
use monge_core::eval;
use monge_core::kernel::Kernel;
use monge_core::value::Value;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

pub use monge_core::scratch::{pooled_buffers, with_scratch, with_scratch2};

/// Process-global tally of rayon tasks forked by the engines (two per
/// [`join_tracked`], one per parallel scan chunk). Relaxed, best-effort
/// under concurrency; the dispatch layer snapshots deltas around each
/// solve so telemetry can report fan-out for free.
static TASKS: AtomicU64 = AtomicU64::new(0);

/// Current value of the process-global task counter.
pub fn task_count() -> u64 {
    TASKS.load(Ordering::Relaxed)
}

/// Adds `n` forked tasks to the tally (parallel iterators count their
/// chunks here).
pub(crate) fn add_tasks(n: u64) {
    if n > 0 {
        TASKS.fetch_add(n, Ordering::Relaxed);
    }
}

/// [`rayon::join`] that counts both closures toward [`task_count`] —
/// the fork primitive every engine in this crate uses, so dispatched
/// solves can report how many tasks a search actually spawned.
pub fn join_tracked<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    TASKS.fetch_add(2, Ordering::Relaxed);
    rayon::join(a, b)
}

/// Target amount of work per rayon task, in nanoseconds.
///
/// Large enough that spawn/steal overhead (~1–2 µs per task) stays
/// under ~10% of useful work, small enough that an 8-thread pool can
/// balance a millisecond-scale problem.
pub const TARGET_TASK_NANOS: f64 = 20_000.0;

/// One-shot grain calibration for the array `a`.
///
/// Measures the per-entry evaluation cost by timing interval scans of
/// a few sample rows (through the same batched-evaluation path the
/// engines use), then sizes the cutoffs for ~[`TARGET_TASK_NANOS`] of
/// work per task. Any valid `MONGE_*` environment variables override
/// the measured fields. Costs a few hundred microseconds; intended to
/// run once per workload, not per call.
///
/// Degenerate inputs (empty array) return [`Tuning::from_env`]
/// unchanged.
pub fn calibrate<T: Value, A: Array2d<T>>(a: &A) -> Tuning {
    let (m, n) = (a.rows(), a.cols());
    if m == 0 || n == 0 {
        return Tuning::from_env();
    }
    let c = per_entry_nanos(a).max(0.05);
    let seq_scan = ((TARGET_TASK_NANOS / c) as usize).clamp(64, 1 << 20);
    let per_row_entries = (n as f64 / m as f64) + (m.max(2) as f64).log2();
    let seq_rows = ((TARGET_TASK_NANOS / (c * per_row_entries)) as usize).clamp(4, 4096);
    // A tube plane costs a full SMAWK pass (~5(q + r) entries), an
    // order of magnitude more than a row scan; keep planes finer.
    let tube_seq_planes = seq_rows.div_ceil(8).clamp(1, 256);
    Tuning {
        seq_scan,
        seq_rows,
        tube_seq_planes,
        kernel: probe_kernel(a),
        ..Tuning::DEFAULT
    }
    .env_overlay()
}

/// Probes whether the SIMD lane kernels actually beat the scalar
/// blocked scan on this array's values, returning the [`Kernel`]
/// request calibration should carry.
///
/// Returns [`Kernel::Auto`] (no request) when SIMD is not compiled in
/// or not supported by the CPU — the scans already fall back to scalar
/// there. Otherwise it materializes one sample row and times both scan
/// implementations; if the vector kernel loses (e.g. very short rows,
/// or a value type the kernels don't cover), the calibrated tuning
/// pins [`Kernel::Scalar`] so the dispatcher turns vectorization off
/// for this workload.
fn probe_kernel<T: Value, A: Array2d<T>>(a: &A) -> Kernel {
    use monge_core::kernel;
    if !kernel::simd_compiled() || !kernel::simd_available() {
        return Kernel::Auto;
    }
    let n = a.cols();
    let width = n.min(4096);
    if width < 2 * kernel::MIN_SIMD_LEN {
        // Too short for the lane kernels to engage at all.
        return Kernel::Auto;
    }
    with_scratch(|scratch: &mut Vec<T>| {
        scratch.clear();
        scratch.resize(width, T::ZERO);
        a.fill_row(a.rows() / 2, 0..width, scratch);
        let reps = (50_000 / width).max(8);
        let time = |f: &dyn Fn(&[T]) -> usize| {
            let t0 = Instant::now();
            for _ in 0..reps {
                std::hint::black_box(f(std::hint::black_box(&scratch[..])));
            }
            t0.elapsed().as_nanos()
        };
        let scalar = time(&|v| eval::argmin_slice_tie_scalar(v, monge_core::Tie::Left));
        let simd = time(&|v| {
            kernel::argmin_lanes(v, monge_core::Tie::Left)
                .unwrap_or_else(|| eval::argmin_slice_tie_scalar(v, monge_core::Tie::Left))
        });
        if simd <= scalar {
            Kernel::Auto
        } else {
            Kernel::Scalar
        }
    })
}

/// Measured cost of one entry evaluation, in nanoseconds.
///
/// Times batched scans over a handful of rows, doubling the scanned
/// width until the sample takes at least ~50 µs (or the array is
/// exhausted) so the clock resolution doesn't dominate.
fn per_entry_nanos<T: Value, A: Array2d<T>>(a: &A) -> f64 {
    let (m, n) = (a.rows(), a.cols());
    let sample_rows: [usize; 3] = [0, m / 2, m - 1];
    with_scratch(|scratch: &mut Vec<T>| {
        let mut width = n.min(256);
        loop {
            let t0 = Instant::now();
            for &row in &sample_rows {
                let (j, _) = eval::interval_argmin(a, row, 0, width, scratch);
                std::hint::black_box(j);
            }
            let nanos = t0.elapsed().as_nanos() as f64;
            let entries = (sample_rows.len() * width) as f64;
            if nanos >= 50_000.0 || width >= n {
                return (nanos / entries).max(0.0);
            }
            width = (width * 4).min(n);
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use monge_core::array2d::{Dense, FnArray};

    #[test]
    fn calibrated_cutoffs_are_sane() {
        let a = Dense::tabulate(64, 512, |i, j| {
            let d = i as i64 - j as i64;
            d * d
        });
        let t = calibrate(&a);
        assert!((64..=1 << 20).contains(&t.seq_scan));
        assert!((4..=4096).contains(&t.seq_rows));
        assert!((1..=256).contains(&t.tube_seq_planes));
        assert!(t.pram_base_rows > 0);
    }

    #[test]
    fn expensive_rows_get_finer_grain_than_cheap_rows() {
        let cheap = Dense::tabulate(32, 4096, |i, j| (i + j) as i64);
        // ~100x more work per entry: an inner loop the evaluator can't
        // batch away.
        let expensive = FnArray::new(32, 4096, |i, j| {
            let mut acc = 0i64;
            for k in 0..100 {
                acc = acc.wrapping_add(((i + 1) * (j + k + 1)) as i64 % 97);
            }
            acc
        });
        let tc = calibrate(&cheap);
        let te = calibrate(&expensive);
        // Calibration may be noisy on a loaded host; require only the
        // direction, with slack.
        assert!(
            te.seq_scan <= tc.seq_scan * 2,
            "expensive rows should not get much coarser grain: cheap={} expensive={}",
            tc.seq_scan,
            te.seq_scan
        );
    }

    #[test]
    fn empty_array_falls_back_to_env_defaults() {
        let a = Dense::tabulate(0, 0, |_, _| 0i64);
        assert_eq!(calibrate(&a), Tuning::from_env());
    }

    #[test]
    fn env_overlay_has_final_say_over_measurement() {
        // Can't set env vars safely in a multithreaded test harness;
        // instead check the overlay identity directly: with no MONGE_*
        // vars set the overlay is the identity, with them set both
        // sides pick up the same values.
        let a = Dense::tabulate(16, 128, |i, j| (i * j) as i64);
        let t = calibrate(&a);
        assert_eq!(t, t.env_overlay());
    }
}
