//! The persistent autotuner: measured backend & tuning selection,
//! cached across runs.
//!
//! The paper offers a *menu* of algorithms per problem shape, and the
//! workspace grew a matching menu of execution choices: host backend
//! (sequential SMAWK vs the rayon engines), grain cutoffs, and the
//! scalar-vs-SIMD kernel pin. [`crate::runtime::calibrate`] sizes the
//! grains from a one-shot per-entry-cost probe, but that probe is
//! re-paid every process, guesses rather than measures the *backend*
//! choice, and never learns. This module replaces guessing with
//! measurement, kubecl-style:
//!
//! * an [`AutotuneKey`] — `(ProblemKind, structure class, element
//!   type, size-class bucket, kernel availability)` — identifies the
//!   family of problems one decision is valid for;
//! * on first encounter of a key, the eligible **candidate set**
//!   (host backend × tuning × kernel pin) is micro-benchmarked on a
//!   subsampled probe of the real problem, and the fastest candidate
//!   becomes the key's [`Winner`];
//! * a process-global table caches winners with **single-flight**
//!   measurement: concurrent solves on the same cold key never measure
//!   twice — exactly one thread claims the measurement, everyone else
//!   falls back to the calibration probe for that call;
//! * winners persist to a versioned, host-fingerprinted JSON file, so
//!   the *next* process starts warm. Any mismatch — schema version,
//!   CPU model, core count, AVX2 probe — or any parse failure silently
//!   re-measures rather than erroring: the cache is a performance
//!   hint, never a correctness input.
//!
//! ## Environment
//!
//! | variable | values | effect |
//! |---|---|---|
//! | `MONGE_AUTOTUNE` | `on` (default) / `readonly` / `off` | `readonly` uses cached winners but never measures or writes; `off` bypasses the table entirely (pure calibrate-probe behavior) |
//! | `MONGE_AUTOTUNE_DIR` | path | where the table file lives; defaults to `$XDG_CACHE_HOME/monge-autotune` or `$HOME/.cache/monge-autotune`, memory-only when neither resolves |
//!
//! ## Precedence
//!
//! The autotuner slots into the [`crate::tuning`] precedence chain
//! between the environment and the calibration probe: *per-call >
//! `MONGE_*` env > autotune cache > calibrate probe > defaults*. A
//! cached winner's tuning is re-overlaid with the `MONGE_*` variables
//! on every use ([`Tuning::env_overlay`]), so a deployment-level pin
//! always beats a measured winner. Which path actually decided a solve
//! is stamped into [`Telemetry::provenance`](monge_core::problem::Telemetry::provenance)
//! ([`TuningProvenance::Cached`](monge_core::problem::TuningProvenance::Cached) / `Measured` / `Probed` / `Default`),
//! so benches and tests can assert the selection path — the CI
//! autotune leg requires a warm second run to report only `cached`
//! with zero measurements.
//!
//! Winners affect **speed only**: every candidate backend returns
//! bitwise-identical solutions (the conformance lab's differential
//! enforces this), so a stale or mis-measured winner can cost
//! microseconds, never correctness.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

use monge_core::array2d::SubArray;
use monge_core::kernel::{self, Kernel};
use monge_core::problem::{Problem, ProblemKind, Structure};
use monge_core::value::Value;

use crate::dispatch::{Backend, Dispatcher};
use crate::runtime;
use crate::tuning::Tuning;

/// Version of the on-disk table schema. Bumped whenever the key or
/// winner encoding changes; files with any other version are ignored
/// wholesale (and re-measured).
pub const SCHEMA_VERSION: u32 = 1;

/// File name of the persisted table inside the autotune directory.
pub const TABLE_FILE: &str = "monge-autotune.json";

/// Rows (planes for tubes) of the subsampled measurement probe. Large
/// enough that grain and kernel effects show, small enough that a cold
/// key costs milliseconds, not the full solve.
pub const PROBE_ROWS: usize = 192;

/// Host backends the measurement races. Simulator backends are never
/// candidates for the same reason they are never auto-selected:
/// running them is never faster than running the host engines.
const HOST_CANDIDATES: [&str; 2] = ["sequential", "rayon"];

/// What the autotuner is allowed to do, from `MONGE_AUTOTUNE`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum AutotuneMode {
    /// Look up, measure on miss, persist winners (the default).
    #[default]
    On,
    /// Use cached winners but never measure and never write.
    ReadOnly,
    /// Bypass the table entirely.
    Off,
}

impl AutotuneMode {
    /// Parses `on` / `readonly` / `off` (ASCII case-insensitive).
    pub fn parse(s: &str) -> Option<AutotuneMode> {
        match s.trim().to_ascii_lowercase().as_str() {
            "on" => Some(AutotuneMode::On),
            "readonly" => Some(AutotuneMode::ReadOnly),
            "off" => Some(AutotuneMode::Off),
            _ => None,
        }
    }

    /// The `MONGE_AUTOTUNE` selection; [`AutotuneMode::On`] when unset
    /// or unparsable.
    pub fn from_env() -> AutotuneMode {
        std::env::var("MONGE_AUTOTUNE")
            .ok()
            .and_then(|s| AutotuneMode::parse(&s))
            .unwrap_or_default()
    }
}

/// The family of problems one measured decision is valid for.
///
/// Deliberately coarse: the exact shape is bucketed into a power-of-two
/// size class (members of one class are within 2× in search area, so
/// one winner fits all), and the element type is keyed by its short
/// name so `i64` and `f64` — which have different kernel bodies and
/// different per-entry costs — never share a winner.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct AutotuneKey {
    /// The problem kind.
    pub kind: ProblemKind,
    /// Structure class: 0 = plain, 1 = Monge, 2 = inverse-Monge.
    pub structure: u8,
    /// Short element type name (`"i64"`, `"f64"`).
    pub elem: String,
    /// `floor(log2(search area)) + 1` — same bucketing as the batch
    /// layer's grouping key.
    pub size_class: u32,
    /// Were the SIMD lane kernels available (compiled in *and*
    /// supported by this host) when the key was formed? A feature-flag
    /// or host change flips this, keying separate winners.
    pub simd: bool,
}

/// Structure class discriminant shared with the batch grouping key
/// (banded/tube problems are Monge by construction).
pub(crate) fn structure_code<T: Value>(p: &Problem<'_, T>) -> u8 {
    match p {
        Problem::Rows { structure, .. } | Problem::Staircase { structure, .. } => match structure {
            Structure::Plain => 0,
            Structure::Monge => 1,
            Structure::InverseMonge => 2,
        },
        Problem::Banded { .. } | Problem::Tube { .. } => 1,
    }
}

/// Power-of-two search-area bucket shared with the batch grouping key.
pub(crate) fn size_class<T: Value>(p: &Problem<'_, T>) -> u32 {
    let (m, n) = p.search_shape();
    let area = (m as u128 * n as u128).max(1);
    128 - area.leading_zeros()
}

/// The short (path-stripped) name of `T`, the table's element-type key.
fn elem_name<T: Value>() -> String {
    let full = std::any::type_name::<T>();
    full.rsplit("::").next().unwrap_or(full).to_string()
}

impl AutotuneKey {
    /// The key of a problem instance on this host/build.
    pub fn of<T: Value>(p: &Problem<'_, T>) -> AutotuneKey {
        AutotuneKey {
            kind: p.kind(),
            structure: structure_code(p),
            elem: elem_name::<T>(),
            size_class: size_class(p),
            simd: kernel::simd_compiled() && kernel::simd_available(),
        }
    }
}

/// A measured decision: which backend to run and with what tuning.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Winner {
    /// Registry name of the fastest candidate backend.
    pub backend: String,
    /// The tuning (grains + kernel pin) it won with. Re-overlaid with
    /// the `MONGE_*` environment at use time, preserving precedence.
    pub tuning: Tuning,
}

/// Table slot: a finished winner, or an in-flight measurement claim.
#[derive(Clone, Debug)]
enum Slot {
    Measuring,
    Ready(Winner),
}

/// What [`Autotuner::begin`] hands a caller.
pub enum Claim<'a> {
    /// The table has a winner for this key.
    Hit(Winner),
    /// This caller owns the (single-flight) measurement for the key:
    /// measure, then [`MeasureToken::fulfill`]. Dropping the token
    /// without fulfilling clears the claim so the key can be retried.
    Measure(MeasureToken<'a>),
    /// The autotuner has nothing for this call — it is off, the key is
    /// being measured by another thread, or the mode is read-only with
    /// a cold key. Fall back to the calibration probe.
    Pass,
}

/// Single-flight measurement claim; see [`Claim::Measure`].
pub struct MeasureToken<'a> {
    tuner: &'a Autotuner,
    key: AutotuneKey,
    done: bool,
}

impl MeasureToken<'_> {
    /// Installs the measured winner (and persists the table in
    /// [`AutotuneMode::On`]).
    pub fn fulfill(mut self, winner: Winner) {
        self.tuner.install(self.key.clone(), winner);
        self.done = true;
    }
}

impl Drop for MeasureToken<'_> {
    fn drop(&mut self) {
        if !self.done {
            // The measurement died (panic, no candidates): clear the
            // Measuring marker so a later call can claim the key.
            let mut table = self.tuner.lock_table();
            if matches!(table.get(&self.key), Some(Slot::Measuring)) {
                table.remove(&self.key);
            }
        }
    }
}

/// The winner table: mode, optional persistence directory, cached
/// winners, and the measurement tally the tests and the CI warm-cache
/// assertion read.
///
/// Most code uses the process-global instance implicitly through
/// [`Dispatcher::solve_calibrated`] / batch grouping; tests construct
/// isolated instances ([`Autotuner::in_memory`], [`Autotuner::with_dir`])
/// and attach them via [`Dispatcher::with_autotuner`].
pub struct Autotuner {
    mode: AutotuneMode,
    dir: Option<PathBuf>,
    table: Mutex<HashMap<AutotuneKey, Slot>>,
    measurements: AtomicU64,
}

impl Autotuner {
    /// An autotuner configured from the environment (`MONGE_AUTOTUNE`,
    /// `MONGE_AUTOTUNE_DIR`), loading any valid persisted table.
    pub fn from_env() -> Autotuner {
        match default_dir() {
            Some(dir) => Autotuner::with_dir(AutotuneMode::from_env(), dir),
            None => Autotuner::in_memory(AutotuneMode::from_env()),
        }
    }

    /// A memory-only autotuner (no persistence).
    pub fn in_memory(mode: AutotuneMode) -> Autotuner {
        Autotuner {
            mode,
            dir: None,
            table: Mutex::new(HashMap::new()),
            measurements: AtomicU64::new(0),
        }
    }

    /// An autotuner persisting under `dir`, seeded with whatever valid
    /// entries the directory's table file holds. A missing, corrupt,
    /// differently-versioned or differently-fingerprinted file seeds
    /// nothing — silently.
    pub fn with_dir(mode: AutotuneMode, dir: impl Into<PathBuf>) -> Autotuner {
        let dir = dir.into();
        let seeded = read_table(&dir.join(TABLE_FILE), &host_fingerprint()).unwrap_or_default();
        Autotuner {
            mode,
            dir: Some(dir),
            table: Mutex::new(
                seeded
                    .into_iter()
                    .map(|(k, w)| (k, Slot::Ready(w)))
                    .collect(),
            ),
            measurements: AtomicU64::new(0),
        }
    }

    /// A disabled autotuner: every [`Autotuner::begin`] returns
    /// [`Claim::Pass`].
    pub fn off() -> Autotuner {
        Autotuner::in_memory(AutotuneMode::Off)
    }

    /// The configured mode.
    pub fn mode(&self) -> AutotuneMode {
        self.mode
    }

    /// How many measurements this instance has *claimed* (the test
    /// hook behind the single-flight and warm-cache assertions).
    pub fn measurements(&self) -> u64 {
        self.measurements.load(Ordering::Relaxed)
    }

    /// Cached winners, in arbitrary order (the bench table writer).
    pub fn entries(&self) -> Vec<(AutotuneKey, Winner)> {
        self.lock_table()
            .iter()
            .filter_map(|(k, s)| match s {
                Slot::Ready(w) => Some((k.clone(), w.clone())),
                Slot::Measuring => None,
            })
            .collect()
    }

    /// The cached winner for `key`, if measurement has completed.
    pub fn lookup(&self, key: &AutotuneKey) -> Option<Winner> {
        match self.lock_table().get(key) {
            Some(Slot::Ready(w)) => Some(w.clone()),
            _ => None,
        }
    }

    /// Looks up `key`, claiming the single-flight measurement when the
    /// key is cold and the mode allows measuring.
    pub fn begin(&self, key: AutotuneKey) -> Claim<'_> {
        if self.mode == AutotuneMode::Off {
            return Claim::Pass;
        }
        let mut table = self.lock_table();
        match table.get(&key) {
            Some(Slot::Ready(w)) => Claim::Hit(w.clone()),
            Some(Slot::Measuring) => Claim::Pass,
            None => {
                if self.mode == AutotuneMode::ReadOnly {
                    return Claim::Pass;
                }
                table.insert(key.clone(), Slot::Measuring);
                self.measurements.fetch_add(1, Ordering::Relaxed);
                Claim::Measure(MeasureToken {
                    tuner: self,
                    key,
                    done: false,
                })
            }
        }
    }

    fn lock_table(&self) -> MutexGuard<'_, HashMap<AutotuneKey, Slot>> {
        // A panic while holding the lock leaves consistent data (every
        // mutation is a single insert/remove); keep serving.
        self.table.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn install(&self, key: AutotuneKey, winner: Winner) {
        let mut table = self.lock_table();
        table.insert(key, Slot::Ready(winner));
        if self.mode == AutotuneMode::On {
            if let Some(dir) = &self.dir {
                let entries: Vec<(AutotuneKey, Winner)> = table
                    .iter()
                    .filter_map(|(k, s)| match s {
                        Slot::Ready(w) => Some((k.clone(), w.clone())),
                        Slot::Measuring => None,
                    })
                    .collect();
                // Best-effort: an unwritable directory degrades to
                // memory-only caching, never to an error.
                let _ = write_table(dir, &host_fingerprint(), &entries);
            }
        }
    }
}

/// The process-global autotuner behind [`Dispatcher::solve_calibrated`]
/// and batch group tuning, configured from the environment on first
/// use.
pub fn global() -> &'static Autotuner {
    static GLOBAL: OnceLock<Autotuner> = OnceLock::new();
    GLOBAL.get_or_init(Autotuner::from_env)
}

/// `MONGE_AUTOTUNE_DIR`, else the user cache directory, else `None`
/// (memory-only — the autotuner never invents a writable path).
fn default_dir() -> Option<PathBuf> {
    if let Ok(d) = std::env::var("MONGE_AUTOTUNE_DIR") {
        if !d.trim().is_empty() {
            return Some(PathBuf::from(d));
        }
    }
    if let Ok(x) = std::env::var("XDG_CACHE_HOME") {
        if !x.trim().is_empty() {
            return Some(Path::new(&x).join("monge-autotune"));
        }
    }
    if let Ok(h) = std::env::var("HOME") {
        if !h.trim().is_empty() {
            return Some(Path::new(&h).join(".cache").join("monge-autotune"));
        }
    }
    None
}

// ---------------------------------------------------------------------
// Host fingerprint
// ---------------------------------------------------------------------

/// The host identity a persisted table is valid for: CPU model, core
/// count, AVX2 probe, joined into one comparable string. Any component
/// changing (new machine, different container CPU allotment, feature
/// flags flipping the vector bodies) invalidates the whole file.
pub fn host_fingerprint() -> String {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let avx2 = if cpu_has_avx2() { "yes" } else { "no" };
    let simd = if kernel::simd_compiled() { "yes" } else { "no" };
    format!(
        "cpu={}; cores={cores}; avx2={avx2}; simd-compiled={simd}",
        cpu_model()
    )
}

/// Raw AVX2 probe, independent of the `simd` cargo feature.
fn cpu_has_avx2() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Best-effort CPU model string (`/proc/cpuinfo` on Linux, `"unknown"`
/// elsewhere), sanitized so it can sit inside a JSON string literal.
fn cpu_model() -> String {
    let raw = std::fs::read_to_string("/proc/cpuinfo")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("model name"))
                .and_then(|l| l.split(':').nth(1))
                .map(|m| m.trim().to_string())
        })
        .unwrap_or_else(|| "unknown".to_string());
    raw.chars()
        .filter(|c| c.is_ascii() && *c != '"' && *c != '\\' && !c.is_ascii_control())
        .collect()
}

// ---------------------------------------------------------------------
// Persistence (hand-rolled line-oriented JSON, like bench-results/)
// ---------------------------------------------------------------------

fn kind_str(k: ProblemKind) -> String {
    format!("{k:?}")
}

fn parse_kind(s: &str) -> Option<ProblemKind> {
    ProblemKind::ALL.into_iter().find(|k| kind_str(*k) == s)
}

fn kernel_str(k: Kernel) -> &'static str {
    match k {
        Kernel::Auto => "auto",
        Kernel::Scalar => "scalar",
        Kernel::Simd => "simd",
    }
}

/// `"key": value` extractor for the flat one-record-per-line encoding
/// (same dialect as `bench-results/`; the bench crate's copy is not
/// visible from here).
fn field(line: &str, key: &str) -> Option<String> {
    let tag = format!("\"{key}\": ");
    let start = line.find(&tag)? + tag.len();
    let rest = &line[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Some(rest[..end].trim().trim_matches('"').to_string())
}

/// Renders the table file: a schema/host header and one entry per line.
fn render_table(fingerprint: &str, entries: &[(AutotuneKey, Winner)]) -> String {
    let mut lines: Vec<String> = entries
        .iter()
        .map(|(k, w)| {
            let t = &w.tuning;
            format!(
                "    {{\"kind\": \"{}\", \"structure\": {}, \"elem\": \"{}\", \"size_class\": {}, \"simd\": {}, \"backend\": \"{}\", \"seq_scan\": {}, \"seq_rows\": {}, \"tube_seq_planes\": {}, \"pram_base_rows\": {}, \"batch_chunks\": {}, \"kernel\": \"{}\"}}",
                kind_str(k.kind),
                k.structure,
                k.elem,
                k.size_class,
                u8::from(k.simd),
                w.backend,
                t.seq_scan,
                t.seq_rows,
                t.tube_seq_planes,
                t.pram_base_rows,
                t.batch_chunks_per_thread,
                kernel_str(t.kernel),
            )
        })
        .collect();
    lines.sort(); // deterministic file for identical tables
    format!(
        "{{\n  \"schema\": {SCHEMA_VERSION},\n  \"host\": \"{fingerprint}\",\n  \"entries\": [\n{}\n  ]\n}}\n",
        lines.join(",\n")
    )
}

/// Parses a table file. `None` on *any* irregularity — missing file,
/// unreadable bytes, wrong schema, wrong host fingerprint, or a single
/// malformed entry — because a winner table is only a hint and a
/// partial one is not worth trusting.
fn read_table(path: &Path, fingerprint: &str) -> Option<Vec<(AutotuneKey, Winner)>> {
    let text = std::fs::read_to_string(path).ok()?;
    let mut schema: Option<u32> = None;
    let mut host: Option<String> = None;
    let mut entries = Vec::new();
    for line in text.lines() {
        let trimmed = line.trim();
        if trimmed.contains("\"kind\":") {
            entries.push(parse_entry(trimmed)?);
        } else if trimmed.starts_with("\"schema\":") {
            let v = trimmed
                .trim_start_matches("\"schema\":")
                .trim()
                .trim_end_matches(',');
            schema = Some(v.parse().ok()?);
        } else if trimmed.starts_with("\"host\":") {
            let v = trimmed
                .trim_start_matches("\"host\":")
                .trim()
                .trim_end_matches(',')
                .trim_matches('"');
            host = Some(v.to_string());
        }
    }
    if schema != Some(SCHEMA_VERSION) || host.as_deref() != Some(fingerprint) {
        return None;
    }
    Some(entries)
}

fn parse_entry(line: &str) -> Option<(AutotuneKey, Winner)> {
    let num = |k: &str| -> Option<usize> { field(line, k)?.parse().ok() };
    let key = AutotuneKey {
        kind: parse_kind(&field(line, "kind")?)?,
        structure: field(line, "structure")?.parse().ok()?,
        elem: field(line, "elem")?,
        size_class: field(line, "size_class")?.parse().ok()?,
        simd: match field(line, "simd")?.as_str() {
            "1" | "true" => true,
            "0" | "false" => false,
            _ => return None,
        },
    };
    // Zero cutoffs would recurse forever; reject them at parse time the
    // same way the env overlay does.
    let positive = |v: usize| if v > 0 { Some(v) } else { None };
    let tuning = Tuning {
        seq_scan: positive(num("seq_scan")?)?,
        seq_rows: positive(num("seq_rows")?)?,
        tube_seq_planes: positive(num("tube_seq_planes")?)?,
        pram_base_rows: positive(num("pram_base_rows")?)?,
        batch_chunks_per_thread: positive(num("batch_chunks")?)?,
        kernel: Kernel::parse(&field(line, "kernel")?)?,
    };
    let backend = field(line, "backend")?;
    if backend.is_empty() {
        return None;
    }
    Some((key, Winner { backend, tuning }))
}

/// Writes the table under `dir` (creating it), via a temp file + rename
/// so concurrent processes never observe a torn file. All failures are
/// reported, not panicked, and callers ignore them.
fn write_table(
    dir: &Path,
    fingerprint: &str,
    entries: &[(AutotuneKey, Winner)],
) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let tmp = dir.join(format!(".{}.tmp-{}", TABLE_FILE, std::process::id()));
    std::fs::write(&tmp, render_table(fingerprint, entries))?;
    let result = std::fs::rename(&tmp, dir.join(TABLE_FILE));
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

// ---------------------------------------------------------------------
// Measurement
// ---------------------------------------------------------------------

/// Micro-benchmarks the eligible candidate set on a subsampled probe of
/// `problem` and returns the fastest `(backend, tuning)` — or `None`
/// when no host candidate is eligible (which real problems never hit:
/// the sequential backend admits everything).
///
/// The probe is the problem itself when it has at most [`PROBE_ROWS`]
/// rows (planes for tubes), else a prefix window of the real arrays —
/// sub-arrays of Monge arrays are Monge, staircase boundaries stay
/// valid under row-prefixing, so every candidate runs the real
/// algorithm on real data. Kernel pins applied while timing are scoped
/// ([`monge_core::kernel::scoped`]): a panicking candidate cannot leak
/// its pin into the process.
pub(crate) fn measure<T: Value>(d: &Dispatcher<T>, problem: &Problem<'_, T>) -> Option<Winner> {
    with_probe(problem, PROBE_ROWS, |probe| {
        let calibrated = runtime::calibrate(&probe.primary_array());
        let env = Tuning::from_env();
        let mut tunings = vec![calibrated];
        if env != calibrated {
            tunings.push(env);
        }
        let lanes = kernel::simd_compiled() && kernel::simd_available();
        let mut candidates: Vec<(&dyn Backend<T>, Tuning)> = Vec::new();
        for name in HOST_CANDIDATES {
            let Some(backend) = d.find(name) else {
                continue;
            };
            if !backend.eligible(probe) {
                continue;
            }
            for &t in &tunings {
                candidates.push((backend, t));
                if lanes {
                    // Race the opposite kernel pin too: vectorization
                    // is exactly the kind of choice that wants a
                    // measurement, not a guess.
                    let flipped = if t.kernel == Kernel::Scalar {
                        Kernel::Auto
                    } else {
                        Kernel::Scalar
                    };
                    let twin = Tuning {
                        kernel: flipped,
                        ..t
                    };
                    if !candidates
                        .iter()
                        .any(|(b, ct)| b.name() == name && *ct == twin)
                    {
                        candidates.push((backend, twin));
                    }
                }
            }
        }
        if candidates.is_empty() {
            return None;
        }
        // Restore whatever kernel pin was active before measuring, even
        // if a candidate panics mid-run.
        let _pin = kernel::scoped(kernel::selected());
        // One untimed warm-up: fault in code paths and grow the scratch
        // arenas so the first timed candidate isn't penalized for them.
        let (b0, t0) = candidates[0];
        let _ = std::hint::black_box(d.run(b0, probe, &t0));
        let mut best: Option<(u128, usize)> = None;
        for (ci, (backend, tuning)) in candidates.iter().enumerate() {
            let mut fastest = u128::MAX;
            for _ in 0..2 {
                let t0 = Instant::now();
                let _ = std::hint::black_box(d.run(*backend, probe, tuning));
                fastest = fastest.min(t0.elapsed().as_nanos());
            }
            if best.is_none_or(|(t, _)| fastest < t) {
                best = Some((fastest, ci));
            }
        }
        best.map(|(_, ci)| Winner {
            backend: candidates[ci].0.name().to_string(),
            tuning: candidates[ci].1,
        })
    })
}

/// Runs `f` on a row-prefix window of `problem` with at most `max_rows`
/// rows (planes for tubes) — or on the problem itself when it already
/// fits. The window drops the rank form (host candidates never need
/// it).
fn with_probe<T: Value, R>(
    problem: &Problem<'_, T>,
    max_rows: usize,
    f: impl FnOnce(&Problem<'_, T>) -> R,
) -> R {
    let rows = problem.primary_array().rows();
    if rows <= max_rows {
        return f(problem);
    }
    match *problem {
        Problem::Rows {
            array,
            structure,
            objective,
            tie,
            ..
        } => {
            let sub = SubArray::new(array, 0..max_rows, 0..array.cols());
            f(&Problem::Rows {
                array: &sub,
                structure,
                objective,
                tie,
                rank: None,
            })
        }
        Problem::Staircase {
            array,
            boundary,
            structure,
            ..
        } => {
            let sub = SubArray::new(array, 0..max_rows, 0..array.cols());
            f(&Problem::Staircase {
                array: &sub,
                boundary: &boundary[..max_rows],
                structure,
                rank: None,
            })
        }
        Problem::Banded {
            array,
            lo,
            hi,
            objective,
        } => {
            let sub = SubArray::new(array, 0..max_rows, 0..array.cols());
            f(&Problem::Banded {
                array: &sub,
                lo: &lo[..max_rows],
                hi: &hi[..max_rows],
                objective,
            })
        }
        Problem::Tube { d, e, objective } => {
            let sub = SubArray::new(d, 0..max_rows, 0..d.cols());
            f(&Problem::Tube {
                d: &sub,
                e,
                objective,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use monge_core::array2d::Dense;

    fn dense(m: usize, n: usize) -> Dense<i64> {
        Dense::tabulate(m, n, |i, j| {
            let d = i as i64 - j as i64;
            d * d
        })
    }

    #[test]
    fn keys_bucket_by_size_class_and_kind() {
        let small = dense(16, 16); // area 256 → class 9
        let twin = dense(8, 32); // same area, same class
        let big = dense(64, 64); // area 4096 → class 13
        let k1 = AutotuneKey::of(&Problem::row_minima(&small));
        let k2 = AutotuneKey::of(&Problem::row_minima(&twin));
        let k3 = AutotuneKey::of(&Problem::row_minima(&big));
        let k4 = AutotuneKey::of(&Problem::row_maxima(&small));
        assert_eq!(k1, k2);
        assert_ne!(k1, k3);
        assert_ne!(k1, k4);
        assert_eq!(k1.elem, "i64");
        assert_eq!(k1.size_class, 9);
        assert_eq!(k1.structure, 1);
    }

    #[test]
    fn plain_and_structured_rows_key_separately() {
        let a = dense(16, 16);
        let structured = AutotuneKey::of(&Problem::row_minima(&a));
        let plain = AutotuneKey::of(&Problem::plain_row_minima(&a));
        assert_ne!(structured, plain);
        assert_eq!(plain.structure, 0);
    }

    #[test]
    fn f64_and_i64_key_separately() {
        let a = dense(16, 16);
        let b = Dense::tabulate(16, 16, |i, j| {
            let d = i as f64 - j as f64;
            d * d
        });
        let ki = AutotuneKey::of(&Problem::row_minima(&a));
        let kf = AutotuneKey::of(&Problem::row_minima(&b));
        assert_ne!(ki, kf);
        assert_eq!(kf.elem, "f64");
    }

    #[test]
    fn single_flight_within_one_instance() {
        let tuner = Autotuner::in_memory(AutotuneMode::On);
        let a = dense(16, 16);
        let key = AutotuneKey::of(&Problem::row_minima(&a));
        let Claim::Measure(token) = tuner.begin(key.clone()) else {
            panic!("cold key must yield the measurement claim");
        };
        // A second caller on the in-flight key passes, never measures.
        assert!(matches!(tuner.begin(key.clone()), Claim::Pass));
        assert_eq!(tuner.measurements(), 1);
        let winner = Winner {
            backend: "sequential".to_string(),
            tuning: Tuning::DEFAULT,
        };
        token.fulfill(winner.clone());
        match tuner.begin(key.clone()) {
            Claim::Hit(w) => assert_eq!(w, winner),
            _ => panic!("fulfilled key must hit"),
        }
        assert_eq!(tuner.measurements(), 1);
        assert_eq!(tuner.lookup(&key), Some(winner));
    }

    #[test]
    fn dropped_token_releases_the_claim() {
        let tuner = Autotuner::in_memory(AutotuneMode::On);
        let a = dense(16, 16);
        let key = AutotuneKey::of(&Problem::row_minima(&a));
        {
            let Claim::Measure(_token) = tuner.begin(key.clone()) else {
                panic!("cold key must yield the claim");
            };
            // _token dropped here without fulfilling.
        }
        assert!(
            matches!(tuner.begin(key), Claim::Measure(_)),
            "abandoned key must be claimable again"
        );
        assert_eq!(tuner.measurements(), 2);
    }

    #[test]
    fn readonly_never_measures_and_off_always_passes() {
        let a = dense(16, 16);
        let key = AutotuneKey::of(&Problem::row_minima(&a));
        let ro = Autotuner::in_memory(AutotuneMode::ReadOnly);
        assert!(matches!(ro.begin(key.clone()), Claim::Pass));
        assert_eq!(ro.measurements(), 0);
        let off = Autotuner::off();
        assert!(matches!(off.begin(key), Claim::Pass));
        assert_eq!(off.measurements(), 0);
    }

    #[test]
    fn table_roundtrips_through_the_file_encoding() {
        let key = AutotuneKey {
            kind: ProblemKind::StaircaseRowMinima,
            structure: 1,
            elem: "i64".to_string(),
            size_class: 17,
            simd: true,
        };
        let winner = Winner {
            backend: "rayon".to_string(),
            tuning: Tuning {
                seq_scan: 512,
                seq_rows: 32,
                tube_seq_planes: 4,
                pram_base_rows: 4,
                batch_chunks_per_thread: 8,
                kernel: Kernel::Scalar,
            },
        };
        let fp = host_fingerprint();
        let rendered = render_table(&fp, &[(key.clone(), winner.clone())]);
        let dir = std::env::temp_dir().join(format!("monge-autotune-rt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(TABLE_FILE), &rendered).unwrap();
        let loaded = read_table(&dir.join(TABLE_FILE), &fp).expect("valid table must load");
        assert_eq!(loaded, vec![(key, winner)]);
        // Wrong fingerprint: the same bytes load as nothing.
        assert!(read_table(&dir.join(TABLE_FILE), "cpu=other; cores=1").is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn measurement_returns_an_eligible_winner() {
        let d = Dispatcher::<i64>::with_default_backends();
        let a = dense(24, 40);
        let p = Problem::row_minima(&a);
        let before = kernel::selected();
        let w = measure(&d, &p).expect("host candidates are always eligible");
        assert!(HOST_CANDIDATES.contains(&w.backend.as_str()));
        assert_eq!(
            kernel::selected(),
            before,
            "measurement must not leak a pin"
        );
    }

    #[test]
    fn probe_windows_large_problems() {
        let a = dense(1000, 8);
        let p = Problem::row_minima(&a);
        let probed_rows = with_probe(&p, PROBE_ROWS, |probe| probe.primary_array().rows());
        assert_eq!(probed_rows, PROBE_ROWS);
        let small = dense(5, 5);
        let p = Problem::row_minima(&small);
        assert_eq!(with_probe(&p, PROBE_ROWS, |q| q.primary_array().rows()), 5);
    }
}
