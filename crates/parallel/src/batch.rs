//! Batched solving: amortized dispatch over heterogeneous problem
//! streams ([`Dispatcher::solve_batch`]) and a [`SolverService`] front
//! door with per-tenant telemetry rollups.
//!
//! A one-at-a-time serving loop pays per request for everything the
//! dispatch stack does once per solve: grain calibration (hundreds of
//! microseconds of timed probe scans), backend selection, kernel
//! pinning, structure validation, scratch-arena warm-up. This module
//! amortizes those costs across a whole batch:
//!
//! 1. **Admission.** Every problem is precondition-checked and its
//!    structural promise validated exactly once (the same
//!    [`GuardPolicy`] semantics as `solve_guarded`): violations fail or
//!    quarantine the individual problem, never the batch.
//! 2. **Grouping.** Admitted problems are grouped by
//!    `(ProblemKind, structure, size-class)` — the same coordinates as
//!    the persistent autotuner's key ([`crate::autotune`]), so one
//!    table lookup (or one single-flight measurement, keyed by the
//!    group's largest member) resolves the [`Tuning`] for every
//!    member; the decision's provenance is stamped into each member's
//!    [`Telemetry`].
//! 3. **Merge-Path chunking.** Each group's row-minima work is
//!    flattened into one global work list of *units* (rows for the
//!    rows/staircase/banded families, planes for tubes) and split into
//!    equal-*cost* contiguous chunks by prefix-summed per-problem cost
//!    estimates — the Merge Path idiom (Green–Odeh–Birk): chunk
//!    boundaries fall where the cost prefix crosses `k·total/C`, so a
//!    batch of one 16384-row problem and five hundred 64-row problems
//!    load-balances instead of serializing on the big one. Chunks run
//!    across the rayon pool; answers are per-row (per-plane) properties
//!    of the array, so stitching the strips back together is
//!    bitwise-identical to solving each problem whole.
//! 4. **Admission control.** A per-batch deadline is carved into
//!    per-group slices proportional to estimated cost; every chunk
//!    checks its group's [`CancelToken`] at strip boundaries (and the
//!    engines checkpoint inside strips). Groups whose estimated cost
//!    exceeds [`BatchPolicy::max_group_cost`] are **shed**: downgraded
//!    onto the `solve_guarded` fallback chain one problem at a time
//!    rather than failing the batch. A panicking or deadline-starved
//!    strip likewise downgrades only its own problem.
//! 5. **Rollups.** Per-problem [`Telemetry`] is merged via
//!    [`Telemetry::merge`]; the [`SolverService`] accumulates the same
//!    rollups per tenant.
//!
//! ```
//! use monge_core::array2d::Dense;
//! use monge_core::problem::Problem;
//! use monge_parallel::batch::BatchPolicy;
//! use monge_parallel::Dispatcher;
//!
//! let a = Dense::tabulate(64, 64, |i, j| {
//!     let d = i as i64 - j as i64;
//!     d * d
//! });
//! let b = Dense::tabulate(16, 48, |i, j| (i as i64 - j as i64).abs());
//! let batch = [Problem::row_minima(&a), Problem::row_minima(&b)];
//! let d = Dispatcher::with_default_backends();
//! let results = d.solve_batch(&batch, BatchPolicy::default());
//! assert_eq!(results.len(), 2);
//! assert!(results.iter().all(|r| r.is_ok()));
//! ```

use std::collections::HashMap;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rayon::prelude::*;

use monge_core::array2d::SubArray;
use monge_core::guard::{
    payload_to_string, with_cancellation, Attempt, AttemptOutcome, CancelToken, Cancelled,
    GuardOutcome, GuardPolicy, SolveError, Validation, ViolationAction,
};
use monge_core::problem::{Problem, ProblemKind, Solution, Structure, Telemetry, TuningProvenance};
use monge_core::queryindex::QueryIndex;
use monge_core::scratch;
use monge_core::smawk::RowExtrema;
use monge_core::tube::TubeExtrema;
use monge_core::value::Value;

use crate::dispatch::{Backend, Dispatcher};
use crate::guarded::{input_preconditions, validate, BruteForceBackend, BRUTE};
use crate::health::{Admission, Observation};
use crate::tuning::Tuning;

/// The [`Telemetry::backend`] / [`Attempt::backend`] label of a solve
/// executed by the fused batch path.
pub const BATCH: &str = "batch";

/// How a batch executes: guard semantics per problem, a wall-clock
/// budget for the whole batch, and the amortization knobs.
#[derive(Clone, Copy, Debug)]
pub struct BatchPolicy {
    /// Per-problem guard semantics: validation mode, violation action,
    /// fallback depth and sampling seed. The policy's own `deadline`
    /// field is ignored — use [`BatchPolicy::deadline`], which is
    /// carved into per-group slices.
    pub guard: GuardPolicy,
    /// Wall-clock budget for the whole batch, carved into per-group
    /// slices proportional to estimated cost. A starved group degrades
    /// to [`SolveError::DeadlineExceeded`] for its own members only.
    pub deadline: Option<Duration>,
    /// Calibrate the grain cutoffs once per group against the group's
    /// most expensive member (default `true`). Ignored when
    /// [`BatchPolicy::tuning`] is set.
    pub calibrate: bool,
    /// Explicit tuning override: beats calibration and the environment,
    /// matching the per-call precedence of [`crate::tuning`].
    pub tuning: Option<Tuning>,
    /// Load-shedding threshold: groups whose estimated cost (in entry
    /// evaluations) exceeds this are not fused; their members are
    /// downgraded onto the `solve_guarded` fallback chain one at a
    /// time. `None` (the default) never sheds.
    pub max_group_cost: Option<u64>,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy {
            guard: GuardPolicy::default(),
            deadline: None,
            calibrate: true,
            tuning: None,
            max_group_cost: None,
        }
    }
}

impl BatchPolicy {
    /// Sets the per-problem guard semantics.
    #[must_use]
    pub fn with_guard(mut self, guard: GuardPolicy) -> Self {
        self.guard = guard;
        self
    }

    /// Sets the whole-batch wall-clock budget.
    #[must_use]
    pub fn with_deadline(mut self, d: Duration) -> Self {
        self.deadline = Some(d);
        self
    }

    /// Pins an explicit tuning instead of calibrating per group.
    #[must_use]
    pub fn with_tuning(mut self, t: Tuning) -> Self {
        self.tuning = Some(t);
        self
    }

    /// Disables per-group calibration (environment-seeded tuning).
    #[must_use]
    pub fn without_calibration(mut self) -> Self {
        self.calibrate = false;
        self
    }

    /// Sets the load-shedding threshold (estimated entry evaluations).
    #[must_use]
    pub fn shed_above(mut self, cost: u64) -> Self {
        self.max_group_cost = Some(cost);
        self
    }
}

/// What a whole batch did: per-problem results and telemetry plus the
/// group-level accounting the service and the benches report.
pub struct BatchReport<T> {
    /// Per-problem outcome, in input order.
    pub results: Vec<Result<Solution<T>, SolveError>>,
    /// Per-problem telemetry, in input order (default for problems that
    /// failed preconditions before reaching an engine).
    pub telemetry: Vec<Telemetry>,
    /// How many `(kind, structure, size-class)` groups the batch formed.
    pub groups: usize,
    /// How many groups were shed onto the fallback chain by
    /// [`BatchPolicy::max_group_cost`].
    pub shed_groups: usize,
}

impl<T: Value> BatchReport<T> {
    /// Whole-batch telemetry rollup via [`Telemetry::merge`].
    pub fn rollup(&self) -> Telemetry {
        Telemetry::merge(&self.telemetry)
    }
}

/// The grouping key: problems sharing it can share one backend
/// selection and one tuning resolution.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
struct GroupKey {
    kind: ProblemKind,
    /// `Structure` discriminant (banded/tube problems are Monge by
    /// construction).
    structure: u8,
    /// `floor(log2(search area)) + 1` — members of one class are within
    /// 2× of each other, so one calibrated tuning fits all.
    size_class: u32,
}

fn group_key<T: Value>(p: &Problem<'_, T>) -> GroupKey {
    // Shares its coordinates with `autotune::AutotuneKey` so one
    // autotune table entry covers one batch group.
    GroupKey {
        kind: p.kind(),
        structure: crate::autotune::structure_code(p),
        size_class: crate::autotune::size_class(p),
    }
}

/// `~ n/m + ceil lg m`: entries a structured engine touches per row.
fn structured_row_cost(m: usize, n: usize) -> u64 {
    let lg = 64 - (m.max(2) as u64 - 1).leading_zeros() as u64;
    (n / m.max(1)) as u64 + lg
}

/// The cost model behind the Merge-Path chunk boundaries:
/// `(units, per-unit cost)` where a *unit* is one row (one plane for
/// tubes) and the cost is an estimated entry-evaluation count.
fn cost_model<T: Value>(p: &Problem<'_, T>) -> (usize, u64) {
    match *p {
        Problem::Rows {
            array, structure, ..
        } => {
            let (m, n) = (array.rows(), array.cols());
            let unit = if structure == Structure::Plain {
                n as u64
            } else {
                structured_row_cost(m, n)
            };
            (m, unit.max(1))
        }
        Problem::Staircase { array, .. } => {
            let (m, n) = (array.rows(), array.cols());
            (m, structured_row_cost(m, n).max(1))
        }
        Problem::Banded { lo, hi, .. } => {
            let m = lo.len();
            let total: u64 = lo
                .iter()
                .zip(hi)
                .map(|(&l, &h)| h.saturating_sub(l) as u64)
                .sum();
            (m, (total / m.max(1) as u64).max(1))
        }
        // A tube plane is a full SMAWK pass over an r×q Monge plane,
        // ~5(q + r) entries (cf. the calibration model in `runtime`).
        Problem::Tube { d, e, .. } => (d.rows(), (5 * (d.cols() + e.cols())).max(1) as u64),
    }
}

/// One contiguous piece of one problem's unit range, assigned to a
/// chunk.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Strip {
    /// Index into the group's member list (not the batch).
    member: usize,
    /// Unit (row / plane) range of that member.
    units: Range<usize>,
}

/// Splits the group's concatenated unit list into ≤ `chunks` contiguous
/// pieces of roughly equal cost: chunk `k` ends where the prefix-summed
/// cost crosses `(k+1)·total/chunks`. Exact partition — every unit of
/// every member lands in exactly one strip, in order.
fn plan_chunks(costs: &[(usize, u64)], chunks: usize) -> Vec<Vec<Strip>> {
    let total: u128 = costs.iter().map(|&(u, c)| u as u128 * c as u128).sum();
    let total_units: usize = costs.iter().map(|&(u, _)| u).sum();
    if total_units == 0 {
        return Vec::new();
    }
    let chunks = chunks.clamp(1, total_units);
    let target = (total / chunks as u128).max(1);
    let mut plan: Vec<Vec<Strip>> = Vec::new();
    let mut cur: Vec<Strip> = Vec::new();
    let mut acc: u128 = 0;
    let mut cut = target;
    for (member, &(units, unit_cost)) in costs.iter().enumerate() {
        let mut u0 = 0usize;
        while u0 < units {
            let take = if plan.len() + 1 >= chunks {
                // Terminal chunk: absorb the remainder.
                units - u0
            } else {
                let room = cut.saturating_sub(acc);
                (room.div_ceil(unit_cost.max(1) as u128).max(1) as usize).min(units - u0)
            };
            cur.push(Strip {
                member,
                units: u0..u0 + take,
            });
            acc += take as u128 * unit_cost as u128;
            u0 += take;
            if acc >= cut && plan.len() + 1 < chunks {
                plan.push(std::mem::take(&mut cur));
                cut += target;
            }
        }
    }
    if !cur.is_empty() {
        plan.push(cur);
    }
    plan
}

/// Solves one strip by building the sub-problem over a row (plane)
/// window of the original arrays and running the group's backend on it.
/// Row-minima answers are per-row properties (per-plane for tubes), so
/// strip answers are bitwise-identical to the corresponding rows of the
/// whole-problem answer.
fn solve_strip<T: Value>(
    dispatcher: &Dispatcher<T>,
    backend: &dyn Backend<T>,
    problem: &Problem<'_, T>,
    units: Range<usize>,
    tuning: &Tuning,
) -> (Solution<T>, Telemetry) {
    // A strip spanning the whole problem needs no window: run the
    // original directly, skipping the SubArray indirection on every
    // entry read (the common case for members smaller than one chunk).
    if units == (0..problem.primary_array().rows()) {
        return dispatcher.run(backend, problem, tuning);
    }
    match *problem {
        Problem::Rows {
            array,
            structure,
            objective,
            tie,
            ..
        } => {
            let sub = SubArray::new(array, units, 0..array.cols());
            let p = Problem::Rows {
                array: &sub,
                structure,
                objective,
                tie,
                rank: None,
            };
            dispatcher.run(backend, &p, tuning)
        }
        Problem::Staircase {
            array,
            boundary,
            structure,
            ..
        } => {
            let sub = SubArray::new(array, units.clone(), 0..array.cols());
            let p = Problem::Staircase {
                array: &sub,
                boundary: &boundary[units],
                structure,
                rank: None,
            };
            dispatcher.run(backend, &p, tuning)
        }
        Problem::Banded {
            array,
            lo,
            hi,
            objective,
        } => {
            let sub = SubArray::new(array, units.clone(), 0..array.cols());
            let p = Problem::Banded {
                array: &sub,
                lo: &lo[units.clone()],
                hi: &hi[units],
                objective,
            };
            dispatcher.run(backend, &p, tuning)
        }
        Problem::Tube { d, e, objective } => {
            let sub = SubArray::new(d, units, 0..d.cols());
            let p = Problem::Tube {
                d: &sub,
                e,
                objective,
            };
            dispatcher.run(backend, &p, tuning)
        }
    }
}

/// Concatenates a problem's strip solutions (already in unit order)
/// back into the whole-problem solution, merging the strip telemetries.
fn stitch<T: Value>(
    problem: &Problem<'_, T>,
    parts: Vec<StripPart<T>>,
) -> (Solution<T>, Telemetry) {
    let mut tel = Telemetry::merge(parts.iter().map(|(_, _, t)| t));
    tel.backend = BATCH;
    let sol = match *problem {
        Problem::Rows { .. } | Problem::Staircase { .. } => {
            let mut index = Vec::new();
            let mut value = Vec::new();
            for (_, s, _) in parts {
                let r = s.into_rows();
                index.extend(r.index);
                value.extend(r.value);
            }
            Solution::Rows(RowExtrema { index, value })
        }
        Problem::Banded { .. } => {
            let mut index = Vec::new();
            let mut value = Vec::new();
            for (_, s, _) in parts {
                if let Solution::Banded {
                    index: si,
                    value: sv,
                } = s
                {
                    index.extend(si);
                    value.extend(sv);
                }
            }
            Solution::Banded { index, value }
        }
        Problem::Tube { e, .. } => {
            let r = e.cols();
            let mut p = 0;
            let mut index = Vec::new();
            let mut value = Vec::new();
            for (_, s, _) in parts {
                let t = s.into_tube();
                p += t.p;
                index.extend(t.index);
                value.extend(t.value);
            }
            Solution::Tube(TubeExtrema { p, r, index, value })
        }
    };
    (sol, tel)
}

/// One stitchable strip output: `(unit range, solution, telemetry)`.
type StripPart<T> = (Range<usize>, Solution<T>, Telemetry);

/// One chunk strip record: `(member index, unit range, result)`, where
/// `None` marks a strip lost to a panic or to the group's cancellation.
type ChunkStrip<T> = (usize, Range<usize>, Option<(Solution<T>, Telemetry)>);

/// What one chunk produced: strip outputs in order, plus the fault
/// kinds it observed (fed to the health registry at group granularity).
struct ChunkOut<T> {
    strips: Vec<ChunkStrip<T>>,
    lost_panic: bool,
    lost_deadline: bool,
}

/// Group-level fused outcome: whether any strip was lost, and to what.
#[derive(Clone, Copy, Debug, Default)]
struct FusedOutcome {
    lost_panic: bool,
    lost_deadline: bool,
}

impl<T: Value> Dispatcher<T> {
    /// Solves a batch of heterogeneous problems with amortized dispatch:
    /// grouped by `(kind, structure, size-class)`, one tuning resolution
    /// and one backend selection per group, Merge-Path chunking across
    /// the rayon pool, per-group deadline slices and load shedding. See
    /// the [module docs](crate::batch) and [`BatchPolicy`].
    ///
    /// Results are in input order; each problem fails or succeeds
    /// individually, with the same answers a sequential
    /// `solve_guarded` loop would produce.
    pub fn solve_batch(
        &self,
        problems: &[Problem<'_, T>],
        policy: BatchPolicy,
    ) -> Vec<Result<Solution<T>, SolveError>> {
        self.solve_batch_report(problems, &policy).results
    }

    /// [`Dispatcher::solve_batch`] with the full per-problem telemetry
    /// and group accounting.
    pub fn solve_batch_report(
        &self,
        problems: &[Problem<'_, T>],
        policy: &BatchPolicy,
    ) -> BatchReport<T> {
        let start = Instant::now();
        let n = problems.len();
        let mut results: Vec<Option<Result<Solution<T>, SolveError>>> =
            (0..n).map(|_| None).collect();
        let mut telemetry: Vec<Telemetry> = (0..n).map(|_| Telemetry::default()).collect();

        // --- Admission: preconditions + exactly one validation per
        //     request (the fused path never re-validates, no matter how
        //     many strips or fallbacks a problem sees). ---
        let mut admitted: Vec<usize> = Vec::new();
        let mut quarantined: Vec<usize> = Vec::new();
        for (i, p) in problems.iter().enumerate() {
            if let Err(reason) = input_preconditions(p) {
                results[i] = Some(Err(SolveError::InvalidInput { reason }));
                continue;
            }
            let t0 = Instant::now();
            let validated = catch_unwind(AssertUnwindSafe(|| validate(p, &policy.guard)));
            let mut outcome = GuardOutcome {
                validation: policy.guard.validation,
                ..GuardOutcome::default()
            };
            outcome.validation_nanos = t0.elapsed().as_nanos();
            match validated {
                Ok(Ok(())) => {
                    telemetry[i].guard = Some(outcome);
                    admitted.push(i);
                }
                Ok(Err(witness)) => match policy.guard.on_violation {
                    ViolationAction::Fail => {
                        results[i] = Some(Err(SolveError::StructureViolation(witness)));
                    }
                    ViolationAction::Quarantine => {
                        outcome.quarantined = true;
                        outcome.witness = Some(*witness);
                        telemetry[i].guard = Some(outcome);
                        quarantined.push(i);
                    }
                },
                Err(payload) => {
                    results[i] = Some(Err(SolveError::BackendPanic {
                        backend: "validator",
                        payload: payload_to_string(payload.as_ref()),
                    }));
                }
            }
        }

        // --- Grouping (deterministic first-appearance order). ---
        let mut groups: Vec<(GroupKey, Vec<usize>)> = Vec::new();
        let mut by_key: HashMap<GroupKey, usize> = HashMap::new();
        for &i in &admitted {
            let key = group_key(&problems[i]);
            let g = *by_key.entry(key).or_insert_with(|| {
                groups.push((key, Vec::new()));
                groups.len() - 1
            });
            groups[g].1.push(i);
        }

        // --- Deadline carving: per-group slices proportional to
        //     estimated cost (quarantined problems form a brute-force
        //     pseudo-group). ---
        let cost_of = |i: usize| -> u128 {
            let (units, unit) = cost_model(&problems[i]);
            units as u128 * unit as u128
        };
        let group_costs: Vec<u128> = groups
            .iter()
            .map(|(_, members)| members.iter().map(|&i| cost_of(i)).sum())
            .collect();
        let quarantine_cost: u128 = quarantined
            .iter()
            .map(|&i| {
                let (m, n) = problems[i].search_shape();
                (m as u128 * n as u128).max(1)
            })
            .sum();
        let total_cost: u128 = (group_costs.iter().sum::<u128>() + quarantine_cost).max(1);
        let slice_for = |cost: u128| -> Option<Duration> {
            policy
                .deadline
                .map(|d| Duration::from_secs_f64(d.as_secs_f64() * cost as f64 / total_cost as f64))
        };

        // --- Execute each group: fused, or shed onto the guarded
        //     fallback chain. ---
        let mut shed_groups = 0usize;
        for ((_, members), &gcost) in groups.iter().zip(&group_costs) {
            let token = slice_for(gcost).map(CancelToken::with_deadline);
            let (tuning, provenance) = self.resolve_group_tuning(policy, members, problems);
            let shed = policy.max_group_cost.is_some_and(|c| gcost > c as u128);
            // The fused path runs on the sequential engine; its circuit
            // breaker gates group selection. An Open circuit downgrades
            // the whole group onto the guarded chain (which does its own
            // per-link admission) instead of fusing onto a backend that
            // is currently faulting.
            let sequential = self.find("sequential");
            let fused_admission = match (&sequential, shed) {
                (Some(_), false) => self.health().admit("sequential"),
                _ => Admission::Allow,
            };
            let breaker_denied = matches!(fused_admission, Admission::Deny { .. });
            match (shed || breaker_denied, sequential) {
                (false, Some(seq)) => {
                    let t_group = Instant::now();
                    let fused = self.run_group_fused(
                        problems,
                        members,
                        seq,
                        &tuning,
                        &token,
                        policy,
                        start,
                        &mut results,
                        &mut telemetry,
                    );
                    // One observation per fused group resolves a probe
                    // and keeps the window's granularity independent of
                    // group size.
                    let group_nanos = t_group.elapsed().as_nanos().min(u64::MAX as u128) as u64;
                    let observed = if fused.lost_deadline {
                        Observation::Deadline
                    } else if fused.lost_panic {
                        Observation::Panic
                    } else {
                        Observation::Ok
                    };
                    self.health().record("sequential", observed, group_nanos);
                }
                _ => {
                    if shed {
                        shed_groups += 1;
                    }
                    for &i in members {
                        let (res, tel) = self.downgrade_solve(&problems[i], policy, &token, tuning);
                        merge_downgrade(&mut telemetry[i], tel);
                        if breaker_denied {
                            telemetry[i].breaker_skips =
                                telemetry[i].breaker_skips.saturating_add(1);
                        }
                        results[i] = Some(res);
                    }
                }
            }
            // One group decision covers every member; stamp it after
            // the executors have written their telemetry.
            for &i in members {
                telemetry[i].provenance = Some(provenance);
            }
        }

        // --- Quarantine pseudo-group: brute force, which is correct
        //     without the structural promise. ---
        if !quarantined.is_empty() {
            let token = slice_for(quarantine_cost).map(CancelToken::with_deadline);
            let brute = BruteForceBackend;
            let tuning = Tuning::from_env();
            for &i in &quarantined {
                if token.as_ref().is_some_and(CancelToken::is_cancelled) {
                    results[i] = Some(Err(self.batch_deadline_error(start, policy)));
                    continue;
                }
                let attempt = catch_unwind(AssertUnwindSafe(|| match &token {
                    Some(tok) => with_cancellation(tok, || self.run(&brute, &problems[i], &tuning)),
                    None => self.run(&brute, &problems[i], &tuning),
                }));
                match attempt {
                    Ok((sol, mut tel)) => {
                        let mut outcome = telemetry[i].guard.take().unwrap_or_default();
                        outcome.attempts.push(Attempt {
                            backend: BRUTE,
                            outcome: AttemptOutcome::Completed,
                        });
                        tel.guard = Some(outcome);
                        telemetry[i] = tel;
                        results[i] = Some(Ok(sol));
                    }
                    Err(payload) if payload.downcast_ref::<Cancelled>().is_some() => {
                        results[i] = Some(Err(self.batch_deadline_error(start, policy)));
                    }
                    Err(payload) => {
                        results[i] = Some(Err(SolveError::BackendPanic {
                            backend: BRUTE,
                            payload: payload_to_string(payload.as_ref()),
                        }));
                    }
                }
            }
        }

        BatchReport {
            results: results
                .into_iter()
                .map(|r| {
                    r.unwrap_or_else(|| {
                        Err(SolveError::InvalidInput {
                            reason: "batch executor produced no outcome".to_string(),
                        })
                    })
                })
                .collect(),
            telemetry,
            groups: groups.len(),
            shed_groups,
        }
    }

    /// One tuning for the whole group: explicit override, else one
    /// autotune consultation keyed by the group's most expensive
    /// member ([`Dispatcher::autotune_decision`] — the group key and
    /// the autotune key share their `(kind, structure, size-class)`
    /// coordinates, so one table entry covers the whole group), else
    /// the environment. The winner's *backend* is ignored here: fused
    /// strips always run on the sequential engine, with the rayon pool
    /// parallelizing across strips rather than within one.
    fn resolve_group_tuning(
        &self,
        policy: &BatchPolicy,
        members: &[usize],
        problems: &[Problem<'_, T>],
    ) -> (Tuning, TuningProvenance) {
        if let Some(t) = policy.tuning {
            return (t, TuningProvenance::Default);
        }
        if !policy.calibrate {
            return (Tuning::from_env(), TuningProvenance::Default);
        }
        let rep = members
            .iter()
            .copied()
            .max_by_key(|&i| {
                let (units, unit) = cost_model(&problems[i]);
                units as u128 * unit as u128
            })
            .expect("groups are never empty");
        let decision = self.autotune_decision(&problems[rep]);
        (decision.tuning, decision.provenance)
    }

    /// The fused path: one scratch prewarm broadcast, one global work
    /// list, Merge-Path chunks across the pool, stitch, and per-problem
    /// downgrade of panicked or starved members.
    #[allow(clippy::too_many_arguments)]
    fn run_group_fused(
        &self,
        problems: &[Problem<'_, T>],
        members: &[usize],
        seq: &dyn Backend<T>,
        tuning: &Tuning,
        token: &Option<CancelToken>,
        policy: &BatchPolicy,
        batch_start: Instant,
        results: &mut [Option<Result<Solution<T>, SolveError>>],
        telemetry: &mut [Telemetry],
    ) -> FusedOutcome {
        // One shared scratch-arena session: pre-grow every pool
        // thread's arena to the group's widest scan once, so no chunk
        // pays the growth memcpys mid-solve.
        let max_cols = members
            .iter()
            .map(|&i| problems[i].primary_array().cols())
            .max()
            .unwrap_or(0);
        if max_cols > 0 {
            rayon::broadcast(|_| scratch::prewarm::<T>(2, max_cols));
        }

        // Members with no units (empty arrays) bypass chunking: solve
        // whole, exactly as the one-at-a-time path would.
        let mut active: Vec<usize> = Vec::with_capacity(members.len());
        for &i in members {
            let (units, _) = cost_model(&problems[i]);
            if units == 0 {
                let (res, tel) =
                    self.direct_solve(&problems[i], seq, tuning, token, policy, batch_start);
                merge_downgrade(&mut telemetry[i], tel);
                results[i] = Some(res);
            } else {
                active.push(i);
            }
        }
        if active.is_empty() {
            return FusedOutcome::default();
        }

        // The global work list and its equal-cost chunks. On a
        // single-thread pool, splitting is pure strip-boundary overhead
        // with no balancing benefit (cancellation still fires through
        // the engines' own checkpoints), so everything rides one chunk.
        let costs: Vec<(usize, u64)> = active.iter().map(|&i| cost_model(&problems[i])).collect();
        let threads = rayon::current_num_threads().max(1);
        let chunk_count = if threads == 1 {
            1
        } else {
            threads * tuning.batch_chunks_per_thread.max(1)
        };
        let chunks = plan_chunks(&costs, chunk_count);

        let chunk_outs: Vec<ChunkOut<T>> = chunks
            .par_iter()
            .map(|chunk| {
                let mut strips = Vec::with_capacity(chunk.len());
                let mut cancelled = false;
                let mut lost_panic = false;
                for strip in chunk {
                    let i = active[strip.member];
                    // The cooperative-cancellation checkpoint at the
                    // strip (chunk-internal) boundary.
                    if cancelled || token.as_ref().is_some_and(CancelToken::is_cancelled) {
                        cancelled = true;
                        strips.push((strip.member, strip.units.clone(), None));
                        continue;
                    }
                    let attempt = catch_unwind(AssertUnwindSafe(|| match token {
                        Some(tok) => with_cancellation(tok, || {
                            solve_strip(self, seq, &problems[i], strip.units.clone(), tuning)
                        }),
                        None => solve_strip(self, seq, &problems[i], strip.units.clone(), tuning),
                    }));
                    match attempt {
                        Ok(out) => strips.push((strip.member, strip.units.clone(), Some(out))),
                        Err(payload) => {
                            if payload.downcast_ref::<Cancelled>().is_some() {
                                cancelled = true;
                            } else {
                                lost_panic = true;
                            }
                            strips.push((strip.member, strip.units.clone(), None));
                        }
                    }
                }
                ChunkOut {
                    strips,
                    lost_panic,
                    lost_deadline: cancelled,
                }
            })
            .collect();

        // Stitch per member; any member with a missing strip is
        // downgraded whole onto the guarded fallback chain with
        // whatever budget is left of the group's slice.
        let mut parts: Vec<Vec<StripPart<T>>> = active.iter().map(|_| Vec::new()).collect();
        let mut broken = vec![false; active.len()];
        let mut fused = FusedOutcome::default();
        for chunk in chunk_outs {
            fused.lost_panic |= chunk.lost_panic;
            fused.lost_deadline |= chunk.lost_deadline;
            for (member, units, out) in chunk.strips {
                match out {
                    Some((sol, tel)) => parts[member].push((units, sol, tel)),
                    None => broken[member] = true,
                }
            }
        }
        for (member, member_parts) in parts.into_iter().enumerate() {
            let i = active[member];
            let units = costs[member].0;
            let mut covered = 0usize;
            let contiguous = member_parts.iter().all(|(r, _, _)| {
                let ok = r.start == covered;
                covered = r.end;
                ok
            });
            if broken[member] || !contiguous || covered != units {
                let (res, tel) = self.downgrade_solve(&problems[i], policy, token, *tuning);
                merge_downgrade(&mut telemetry[i], tel);
                results[i] = Some(res);
                continue;
            }
            // An unsplit member needs no concatenation or merge.
            let (sol, mut tel) = if member_parts.len() == 1 {
                let (_, sol, mut tel) = member_parts.into_iter().next().expect("one part");
                tel.backend = BATCH;
                (sol, tel)
            } else {
                stitch(&problems[i], member_parts)
            };
            let mut outcome = telemetry[i].guard.take().unwrap_or_default();
            outcome.attempts.push(Attempt {
                backend: BATCH,
                outcome: AttemptOutcome::Completed,
            });
            tel.guard = Some(outcome);
            telemetry[i] = tel;
            results[i] = Some(Ok(sol));
        }
        fused
    }

    /// Whole-problem solve on the group backend (empty problems, which
    /// have no units to chunk).
    fn direct_solve(
        &self,
        problem: &Problem<'_, T>,
        seq: &dyn Backend<T>,
        tuning: &Tuning,
        token: &Option<CancelToken>,
        policy: &BatchPolicy,
        batch_start: Instant,
    ) -> (Result<Solution<T>, SolveError>, Telemetry) {
        let attempt = catch_unwind(AssertUnwindSafe(|| match token {
            Some(tok) => with_cancellation(tok, || self.run(seq, problem, tuning)),
            None => self.run(seq, problem, tuning),
        }));
        match attempt {
            Ok((sol, mut tel)) => {
                tel.backend = BATCH;
                (Ok(sol), tel)
            }
            Err(payload) if payload.downcast_ref::<Cancelled>().is_some() => (
                Err(self.batch_deadline_error(batch_start, policy)),
                Telemetry::default(),
            ),
            Err(payload) => (
                Err(SolveError::BackendPanic {
                    backend: seq.name(),
                    payload: payload_to_string(payload.as_ref()),
                }),
                Telemetry::default(),
            ),
        }
    }

    /// Downgrades one problem onto the `solve_guarded` fallback chain:
    /// validation off (the batch already validated it once), deadline
    /// clamped to what remains of the group's slice.
    fn downgrade_solve(
        &self,
        problem: &Problem<'_, T>,
        policy: &BatchPolicy,
        token: &Option<CancelToken>,
        tuning: Tuning,
    ) -> (Result<Solution<T>, SolveError>, Telemetry) {
        let deadline = match token {
            Some(tok) => tok.remaining(),
            None => None,
        };
        let guard = GuardPolicy {
            validation: Validation::Off,
            deadline,
            ..policy.guard
        };
        match self.solve_guarded_with(problem, &guard, tuning) {
            Ok((sol, tel)) => (Ok(sol), tel),
            Err(e) => (Err(e), Telemetry::default()),
        }
    }

    fn batch_deadline_error(&self, start: Instant, policy: &BatchPolicy) -> SolveError {
        SolveError::DeadlineExceeded {
            elapsed: start.elapsed(),
            deadline: policy.deadline.unwrap_or_default(),
        }
    }
}

/// Folds a downgraded (or direct) solve's telemetry into the slot that
/// already holds the batch-stage validation record, keeping the
/// admission stage's guard outcome fields when the solve brought none.
fn merge_downgrade(slot: &mut Telemetry, solved: Telemetry) {
    let admission = slot.guard.take();
    *slot = solved;
    match (&mut slot.guard, admission) {
        (Some(g), Some(a)) => {
            // The batch validated during admission; the downgraded solve
            // ran with validation off. Surface the real record.
            g.validation = a.validation;
            g.validation_nanos = a.validation_nanos;
            if g.witness.is_none() {
                g.witness = a.witness;
            }
        }
        (slot_guard @ None, Some(a)) => *slot_guard = Some(a),
        _ => {}
    }
}

/// Why [`SolverService::submit`] refused a problem — typed backpressure
/// the caller can act on (drain now, shed load, or retry after the next
/// drain) instead of an unbounded queue absorbing an overload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The service's bounded pending queue is full; drain before
    /// submitting more.
    Overloaded {
        /// Problems currently pending.
        pending: usize,
        /// The queue bound ([`SolverService::with_max_pending`]).
        capacity: usize,
    },
    /// This tenant reached its in-flight quota; other tenants may still
    /// submit.
    TenantOverQuota {
        /// The refused tenant.
        tenant: String,
        /// That tenant's pending problems.
        pending: usize,
        /// The per-tenant bound ([`SolverService::with_tenant_quota`]).
        quota: usize,
    },
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Overloaded { pending, capacity } => {
                write!(
                    f,
                    "service overloaded: {pending} pending of {capacity} capacity"
                )
            }
            SubmitError::TenantOverQuota {
                tenant,
                pending,
                quota,
            } => {
                write!(
                    f,
                    "tenant '{tenant}' over quota: {pending} pending of {quota} allowed"
                )
            }
        }
    }
}

impl std::error::Error for SubmitError {}

/// A front door for streams of heterogeneous problems: submit per
/// tenant (against a bounded queue and optional per-tenant quotas),
/// drain as one amortized batch, read per-tenant telemetry rollups.
///
/// Drains are *graceful* under pressure: the batch deadline is carved
/// into per-group slices, and past-deadline or faulting work is shed
/// onto the guarded fallback chain member-by-member instead of stalling
/// or failing the whole drain — submission order of the results is
/// preserved regardless.
///
/// ```
/// use monge_core::array2d::Dense;
/// use monge_core::problem::Problem;
/// use monge_parallel::batch::{BatchPolicy, SolverService};
///
/// let a = Dense::tabulate(32, 32, |i, j| {
///     let d = i as i64 - j as i64;
///     d * d
/// });
/// let mut svc = SolverService::new(BatchPolicy::default());
/// svc.submit("tenant-a", Problem::row_minima(&a)).unwrap();
/// svc.submit("tenant-b", Problem::row_maxima(&a)).unwrap();
/// let results = svc.drain();
/// assert!(results.iter().all(|r| r.is_ok()));
/// assert!(svc.tenant_telemetry("tenant-a").unwrap().evaluations > 0);
/// ```
pub struct SolverService<'a, T: Value> {
    dispatcher: Dispatcher<T>,
    policy: BatchPolicy,
    queue: Vec<(String, Problem<'a, T>)>,
    tenants: HashMap<String, Telemetry>,
    max_pending: usize,
    tenant_quota: Option<usize>,
    pending_by_tenant: HashMap<String, usize>,
    indexes: HashMap<String, HashMap<String, Arc<QueryIndex<T>>>>,
}

/// Default bound on a service's pending queue.
pub const DEFAULT_MAX_PENDING: usize = 4096;

impl<'a, T: Value> SolverService<'a, T> {
    /// A service over [`Dispatcher::with_default_backends`].
    pub fn new(policy: BatchPolicy) -> Self {
        Self::with_dispatcher(Dispatcher::with_default_backends(), policy)
    }

    /// A service over a custom registry.
    pub fn with_dispatcher(dispatcher: Dispatcher<T>, policy: BatchPolicy) -> Self {
        SolverService {
            dispatcher,
            policy,
            queue: Vec::new(),
            tenants: HashMap::new(),
            max_pending: DEFAULT_MAX_PENDING,
            tenant_quota: None,
            pending_by_tenant: HashMap::new(),
            indexes: HashMap::new(),
        }
    }

    /// Bounds the pending queue (default [`DEFAULT_MAX_PENDING`]); a
    /// full queue refuses submissions with [`SubmitError::Overloaded`].
    #[must_use]
    pub fn with_max_pending(mut self, capacity: usize) -> Self {
        self.max_pending = capacity;
        self
    }

    /// Caps any one tenant's pending problems; an over-quota tenant is
    /// refused with [`SubmitError::TenantOverQuota`] while others keep
    /// submitting — one noisy tenant cannot monopolize the queue.
    #[must_use]
    pub fn with_tenant_quota(mut self, quota: usize) -> Self {
        self.tenant_quota = Some(quota);
        self
    }

    /// The underlying registry (e.g. to register extra backends before
    /// the first drain).
    pub fn dispatcher_mut(&mut self) -> &mut Dispatcher<T> {
        &mut self.dispatcher
    }

    /// The dispatcher's fault memory ([`crate::health`]): breaker
    /// states and the retry budget carried across drains.
    pub fn health(&self) -> &std::sync::Arc<crate::health::HealthRegistry> {
        self.dispatcher.health()
    }

    /// Enqueues a problem for `tenant`; on success returns its index in
    /// the next [`SolverService::drain`]'s result vector. Refusals are
    /// typed backpressure ([`SubmitError`]) and leave the queue
    /// unchanged.
    pub fn submit(&mut self, tenant: &str, problem: Problem<'a, T>) -> Result<usize, SubmitError> {
        if self.queue.len() >= self.max_pending {
            return Err(SubmitError::Overloaded {
                pending: self.queue.len(),
                capacity: self.max_pending,
            });
        }
        let tenant_pending = self.pending_by_tenant.get(tenant).copied().unwrap_or(0);
        if let Some(quota) = self.tenant_quota {
            if tenant_pending >= quota {
                return Err(SubmitError::TenantOverQuota {
                    tenant: tenant.to_string(),
                    pending: tenant_pending,
                    quota,
                });
            }
        }
        *self
            .pending_by_tenant
            .entry(tenant.to_string())
            .or_insert(0) += 1;
        self.queue.push((tenant.to_string(), problem));
        Ok(self.queue.len() - 1)
    }

    /// Problems waiting for the next drain.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Problems `tenant` has waiting for the next drain.
    pub fn tenant_pending(&self, tenant: &str) -> usize {
        self.pending_by_tenant.get(tenant).copied().unwrap_or(0)
    }

    /// Builds (or fetches) `tenant`'s named [`QueryIndex`] over
    /// `problem`'s array, under the service's guard policy.
    ///
    /// The first call for a `(tenant, name)` pair runs
    /// [`Dispatcher::build_index_guarded`] and folds the build's
    /// telemetry (evaluations, `index_builds`, `index_bytes`,
    /// `index_breakpoints`, build phase) into the tenant's rollup.
    /// Later calls return the cached handle and bump the rollup's
    /// `index_hits` instead — the handle stays live across drains, so a
    /// tenant preprocesses once and serves query batches indefinitely.
    /// Handles are [`Arc`]s: clones stay valid even after
    /// [`SolverService::drop_index`].
    ///
    /// # Errors
    ///
    /// As for [`Dispatcher::build_index_guarded`]; a failed build caches
    /// nothing.
    pub fn build_index(
        &mut self,
        tenant: &str,
        name: &str,
        problem: &Problem<'_, T>,
    ) -> Result<Arc<QueryIndex<T>>, SolveError> {
        if let Some(ix) = self
            .indexes
            .get(tenant)
            .and_then(|named| named.get(name))
            .cloned()
        {
            let rollup = self.tenants.entry(tenant.to_string()).or_default();
            rollup.index_hits = rollup.index_hits.saturating_add(1);
            return Ok(ix);
        }
        let (ix, tel) = self
            .dispatcher
            .build_index_guarded(problem, &self.policy.guard)?;
        self.tenants
            .entry(tenant.to_string())
            .or_default()
            .accumulate(&tel);
        let ix = Arc::new(ix);
        self.indexes
            .entry(tenant.to_string())
            .or_default()
            .insert(name.to_string(), Arc::clone(&ix));
        Ok(ix)
    }

    /// `tenant`'s named index handle, if one has been built.
    pub fn index(&self, tenant: &str, name: &str) -> Option<Arc<QueryIndex<T>>> {
        self.indexes
            .get(tenant)
            .and_then(|named| named.get(name))
            .cloned()
    }

    /// Evicts `tenant`'s named index, folding its unharvested query
    /// counters into the tenant rollup first. Returns whether an index
    /// was cached under that name. Outstanding [`Arc`] clones keep
    /// serving; only the service's handle is dropped.
    pub fn drop_index(&mut self, tenant: &str, name: &str) -> bool {
        let Some(named) = self.indexes.get_mut(tenant) else {
            return false;
        };
        let Some(ix) = named.remove(name) else {
            return false;
        };
        if named.is_empty() {
            self.indexes.remove(tenant);
        }
        let (queries, probes) = ix.take_counters();
        let rollup = self.tenants.entry(tenant.to_string()).or_default();
        rollup.index_queries = rollup.index_queries.saturating_add(queries);
        rollup.index_probes = rollup.index_probes.saturating_add(probes);
        true
    }

    /// Solves everything submitted since the last drain as one batch
    /// (in submission order), folds each problem's telemetry into its
    /// tenant's rollup, and returns the per-problem outcomes.
    ///
    /// Also harvests every cached [`QueryIndex`]'s usage counters since
    /// the previous drain into its tenant's `index_queries` /
    /// `index_probes`, so rollups account for query serving alongside
    /// solves.
    pub fn drain(&mut self) -> Vec<Result<Solution<T>, SolveError>> {
        let queue = std::mem::take(&mut self.queue);
        self.pending_by_tenant.clear();
        let problems: Vec<Problem<'a, T>> = queue.iter().map(|(_, p)| *p).collect();
        let report = self.dispatcher.solve_batch_report(&problems, &self.policy);
        for ((tenant, _), tel) in queue.iter().zip(&report.telemetry) {
            self.tenants
                .entry(tenant.clone())
                .or_default()
                .accumulate(tel);
        }
        for (tenant, named) in &self.indexes {
            let mut queries = 0u64;
            let mut probes = 0u64;
            for ix in named.values() {
                let (q, p) = ix.take_counters();
                queries = queries.saturating_add(q);
                probes = probes.saturating_add(p);
            }
            if queries != 0 || probes != 0 {
                let rollup = self.tenants.entry(tenant.clone()).or_default();
                rollup.index_queries = rollup.index_queries.saturating_add(queries);
                rollup.index_probes = rollup.index_probes.saturating_add(probes);
            }
        }
        report.results
    }

    /// The accumulated rollup for one tenant (across every drain).
    pub fn tenant_telemetry(&self, tenant: &str) -> Option<&Telemetry> {
        self.tenants.get(tenant)
    }

    /// Every tenant's rollup, in arbitrary order.
    pub fn tenants(&self) -> impl Iterator<Item = (&str, &Telemetry)> {
        self.tenants.iter().map(|(k, v)| (k.as_str(), v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use monge_core::array2d::{Array2d, Dense};
    use monge_core::generators::random_monge_dense;
    use monge_core::problem::Objective;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn monge(m: usize, n: usize, seed: u64) -> Dense<i64> {
        let mut rng = StdRng::seed_from_u64(seed);
        random_monge_dense(m, n, &mut rng)
    }

    #[test]
    fn chunk_plan_is_an_exact_partition_in_order() {
        // One big member and many small ones — the Merge-Path shape.
        let mut costs: Vec<(usize, u64)> = vec![(16384, 3)];
        costs.extend((0..40).map(|_| (64usize, 3u64)));
        let plan = plan_chunks(&costs, 8);
        assert!(plan.len() <= 8 && !plan.is_empty());
        // Every unit of every member appears exactly once, in order.
        let mut next: Vec<usize> = vec![0; costs.len()];
        for chunk in &plan {
            for strip in chunk {
                assert_eq!(strip.units.start, next[strip.member]);
                next[strip.member] = strip.units.end;
            }
        }
        for (m, &(units, _)) in costs.iter().enumerate() {
            assert_eq!(next[m], units, "member {m} fully covered");
        }
        // The big member is split across chunks rather than serializing
        // one chunk on it.
        let big_strips: usize = plan.iter().flatten().filter(|s| s.member == 0).count();
        assert!(
            big_strips > 1,
            "16384-row member split into {big_strips} strip(s)"
        );
        // Chunk costs are balanced within ~2x of the ideal target.
        let cost = |c: &Vec<Strip>| c.iter().map(|s| s.units.len() as u64 * 3).sum::<u64>();
        let total: u64 = plan.iter().map(cost).sum();
        let target = total / plan.len() as u64;
        for c in &plan {
            assert!(cost(c) <= 2 * target + 3 * 16384 / 8, "balanced chunks");
        }
    }

    #[test]
    fn chunk_plan_handles_empty_and_degenerate_inputs() {
        assert!(plan_chunks(&[], 4).is_empty());
        assert!(plan_chunks(&[(0, 5), (0, 1)], 4).is_empty());
        let plan = plan_chunks(&[(1, 100)], 8);
        assert_eq!(plan.len(), 1);
        assert_eq!(
            plan[0],
            vec![Strip {
                member: 0,
                units: 0..1
            }]
        );
    }

    #[test]
    fn batch_matches_individual_solves_across_kinds() {
        let a = monge(33, 47, 1);
        let b = monge(64, 16, 2);
        let small = monge(5, 5, 3);
        let boundary: Vec<usize> = (0..33).map(|i| 47 - i).collect();
        let lo: Vec<usize> = (0..33).map(|i| i / 2).collect();
        let hi: Vec<usize> = (0..33).map(|i| (i / 2 + 9).min(47)).collect();
        // Tube factors must chain: b is 64×16, so e needs 16 rows.
        let e = monge(16, 9, 4);
        let problems = vec![
            Problem::row_minima(&a),
            Problem::row_maxima(&b),
            Problem::row_minima(&small),
            Problem::staircase_row_minima(&a, &boundary),
            Problem::banded_row_minima(&a, &lo, &hi),
            Problem::tube_minima(&b, &e),
            Problem::plain_row_minima(&a),
        ];

        let d = Dispatcher::with_default_backends();
        let policy = BatchPolicy::default().without_calibration();
        let batch = d.solve_batch(&problems, policy);
        for (i, p) in problems.iter().enumerate() {
            let (expected, _) = d
                .solve_guarded_with(p, &GuardPolicy::default(), Tuning::from_env())
                .unwrap();
            assert_eq!(
                batch[i].as_ref().unwrap(),
                &expected,
                "problem {i} ({:?}) differs from the one-at-a-time solve",
                p.kind()
            );
        }
    }

    #[test]
    fn batch_telemetry_records_one_validation_and_a_batch_attempt() {
        let a = monge(40, 40, 7);
        let problems = vec![Problem::row_minima(&a); 3];
        let d = Dispatcher::with_default_backends();
        let policy = BatchPolicy::default()
            .without_calibration()
            .with_guard(GuardPolicy::full_validation());
        let report = d.solve_batch_report(&problems, &policy);
        assert_eq!(report.groups, 1);
        for tel in &report.telemetry {
            let guard = tel.guard.as_ref().unwrap();
            assert!(
                guard.validation_nanos > 0,
                "validation ran during admission"
            );
            assert_eq!(guard.fallback_path(), vec![BATCH]);
            assert!(tel.evaluations > 0);
        }
        assert!(report.rollup().evaluations >= report.telemetry[0].evaluations);
    }

    #[test]
    fn zero_deadline_starves_the_batch_without_panicking() {
        let a = monge(256, 256, 9);
        let problems = vec![Problem::row_minima(&a); 4];
        let d = Dispatcher::with_default_backends();
        let policy = BatchPolicy::default()
            .without_calibration()
            .with_deadline(Duration::ZERO);
        let results = d.solve_batch(&problems, policy);
        for r in results {
            assert!(
                matches!(r, Err(SolveError::DeadlineExceeded { .. })),
                "starved batch must fail with DeadlineExceeded, got {r:?}"
            );
        }
    }

    #[test]
    fn shedding_degrades_but_still_answers() {
        let a = monge(128, 128, 11);
        let problems = vec![Problem::row_minima(&a); 3];
        let d = Dispatcher::with_default_backends();
        let report = d.solve_batch_report(
            &problems,
            &BatchPolicy::default().without_calibration().shed_above(1),
        );
        assert_eq!(report.shed_groups, 1, "the lone group overflows the cap");
        let (expected, _) = d
            .solve_guarded_with(&problems[0], &GuardPolicy::default(), Tuning::from_env())
            .unwrap();
        for (r, tel) in report.results.iter().zip(&report.telemetry) {
            assert_eq!(r.as_ref().unwrap(), &expected);
            // Shed members went through the guarded chain, not the
            // fused path.
            let guard = tel.guard.as_ref().unwrap();
            assert!(guard.fallback_path().iter().all(|&b| b != BATCH));
        }
    }

    #[test]
    fn quarantined_member_degrades_to_brute_only_for_itself() {
        let good = monge(24, 24, 13);
        // An anti-Monge bump the full check must catch.
        let mut bad = good.clone();
        let v = bad.entry(3, 3);
        bad.set(3, 3, v + 1_000_000);
        let problems = vec![Problem::row_minima(&good), Problem::row_minima(&bad)];
        let d = Dispatcher::with_default_backends();
        let policy = BatchPolicy::default()
            .without_calibration()
            .with_guard(GuardPolicy::full_validation());
        let report = d.solve_batch_report(&problems, &policy);
        let good_guard = report.telemetry[0].guard.as_ref().unwrap();
        assert!(!good_guard.quarantined);
        assert_eq!(good_guard.fallback_path(), vec![BATCH]);
        let bad_guard = report.telemetry[1].guard.as_ref().unwrap();
        assert!(bad_guard.quarantined);
        assert_eq!(bad_guard.fallback_path(), vec![BRUTE]);
        // Brute's answer is the true row minima of the corrupted array.
        let (brute_expected, _) = d
            .solve_guarded_with(
                &problems[1],
                &GuardPolicy::full_validation(),
                Tuning::from_env(),
            )
            .unwrap();
        assert_eq!(report.results[1].as_ref().unwrap(), &brute_expected);
    }

    #[test]
    fn service_rolls_up_telemetry_per_tenant() {
        let a = monge(32, 32, 17);
        let mut svc = SolverService::new(BatchPolicy::default().without_calibration());
        svc.submit("alpha", Problem::row_minima(&a)).unwrap();
        svc.submit("alpha", Problem::row_maxima(&a)).unwrap();
        svc.submit("beta", Problem::row_minima(&a)).unwrap();
        assert_eq!(svc.pending(), 3);
        assert_eq!(svc.tenant_pending("alpha"), 2);
        let results = svc.drain();
        assert_eq!(results.len(), 3);
        assert!(results.iter().all(Result::is_ok));
        assert_eq!(svc.pending(), 0);
        let alpha = svc.tenant_telemetry("alpha").unwrap().clone();
        let beta = svc.tenant_telemetry("beta").unwrap().clone();
        assert!(alpha.evaluations > beta.evaluations);
        assert_eq!(alpha.kind, None, "mixed kinds collapse in the rollup");
        assert_eq!(svc.tenants().count(), 2);
        // A second drain accumulates instead of replacing.
        svc.submit("beta", Problem::row_minima(&a)).unwrap();
        let before = beta.evaluations;
        svc.drain();
        assert!(svc.tenant_telemetry("beta").unwrap().evaluations > before);
    }

    #[test]
    fn submit_backpressure_is_typed_and_leaves_the_queue_intact() {
        let a = monge(8, 8, 23);
        let mut svc = SolverService::new(BatchPolicy::default().without_calibration())
            .with_max_pending(2)
            .with_tenant_quota(1);
        svc.submit("alpha", Problem::row_minima(&a)).unwrap();
        // Tenant quota fires first: alpha already has 1 in flight.
        match svc.submit("alpha", Problem::row_minima(&a)) {
            Err(SubmitError::TenantOverQuota {
                tenant,
                pending,
                quota,
            }) => {
                assert_eq!(tenant, "alpha");
                assert_eq!((pending, quota), (1, 1));
            }
            other => panic!("expected TenantOverQuota, got {other:?}"),
        }
        svc.submit("beta", Problem::row_minima(&a)).unwrap();
        // Queue full: even a fresh tenant is refused.
        match svc.submit("gamma", Problem::row_minima(&a)) {
            Err(SubmitError::Overloaded { pending, capacity }) => {
                assert_eq!((pending, capacity), (2, 2));
            }
            other => panic!("expected Overloaded, got {other:?}"),
        }
        assert_eq!(svc.pending(), 2, "refusals leave the queue unchanged");
        // Drain frees both the queue and the tenant counters.
        assert!(svc.drain().iter().all(Result::is_ok));
        assert_eq!(svc.tenant_pending("alpha"), 0);
        svc.submit("alpha", Problem::row_minima(&a)).unwrap();
        let errs: Vec<String> = [
            SubmitError::Overloaded {
                pending: 2,
                capacity: 2,
            },
            SubmitError::TenantOverQuota {
                tenant: "alpha".into(),
                pending: 1,
                quota: 1,
            },
        ]
        .iter()
        .map(ToString::to_string)
        .collect();
        assert!(errs[0].contains("overloaded"));
        assert!(errs[1].contains("alpha"));
    }

    #[test]
    fn drain_preserves_submit_order_across_mixed_outcomes() {
        // Distinct row counts make each solution traceable to its
        // submission slot even across quarantine, invalid input, and
        // clean members interleaved between two tenants.
        let a = monge(10, 16, 29);
        let b = monge(20, 16, 31);
        let c = monge(30, 16, 37);
        let mut broken = monge(15, 15, 41);
        let v = broken.entry(4, 4);
        broken.set(4, 4, v + 1_000_000);
        let bad_boundary = vec![1usize, 5]; // wrong length AND increasing
        let mut svc = SolverService::new(
            BatchPolicy::default()
                .without_calibration()
                .with_guard(GuardPolicy::full_validation()),
        );
        let i0 = svc.submit("alpha", Problem::row_minima(&a)).unwrap();
        let i1 = svc.submit("beta", Problem::row_minima(&broken)).unwrap();
        let i2 = svc
            .submit("alpha", Problem::staircase_row_minima(&a, &bad_boundary))
            .unwrap();
        let i3 = svc.submit("beta", Problem::row_minima(&b)).unwrap();
        let i4 = svc.submit("alpha", Problem::row_minima(&c)).unwrap();
        assert_eq!((i0, i1, i2, i3, i4), (0, 1, 2, 3, 4));
        let results = svc.drain();
        assert_eq!(results.len(), 5);
        assert_eq!(results[0].as_ref().unwrap().rows().index.len(), 10);
        // The quarantined member still answers (brute), in its slot.
        assert_eq!(results[1].as_ref().unwrap().rows().index.len(), 15);
        assert!(matches!(results[2], Err(SolveError::InvalidInput { .. })));
        assert_eq!(results[3].as_ref().unwrap().rows().index.len(), 20);
        assert_eq!(results[4].as_ref().unwrap().rows().index.len(), 30);
    }

    #[test]
    fn tenant_isolation_survives_a_faulty_neighbor() {
        // Tenant alpha streams structure-violating arrays (quarantined);
        // tenant beta's clean work must come back bitwise-identical to a
        // solo run, with no resilience counters leaking into its rollup.
        let clean = monge(24, 24, 43);
        let mut dirty = clean.clone();
        let v = dirty.entry(2, 2);
        dirty.set(2, 2, v + 1_000_000);
        let policy = BatchPolicy::default()
            .without_calibration()
            .with_guard(GuardPolicy::full_validation());
        let d = Dispatcher::with_default_backends();
        let (solo, _) = d
            .solve_guarded_with(
                &Problem::row_minima(&clean),
                &GuardPolicy::full_validation(),
                Tuning::from_env(),
            )
            .unwrap();
        let mut svc = SolverService::new(policy);
        svc.submit("alpha", Problem::row_minima(&dirty)).unwrap();
        svc.submit("beta", Problem::row_minima(&clean)).unwrap();
        svc.submit("alpha", Problem::row_minima(&dirty)).unwrap();
        let results = svc.drain();
        assert_eq!(results[1].as_ref().unwrap(), &solo);
        let beta = svc.tenant_telemetry("beta").unwrap();
        assert_eq!(beta.retries, 0);
        assert_eq!(beta.breaker_skips, 0);
        // Alpha's quarantined members still answer correctly (brute).
        assert!(results[0].is_ok() && results[2].is_ok());
        assert!(svc.tenant_telemetry("alpha").unwrap().evaluations > 0);
    }

    #[test]
    fn open_sequential_breaker_downgrades_fused_groups() {
        use crate::health::{HealthConfig, HealthRegistry, VirtualClock};
        use std::sync::Arc;
        let clock = Arc::new(VirtualClock::new());
        let registry = Arc::new(HealthRegistry::new(HealthConfig::DEFAULT, clock));
        let d = Dispatcher::with_default_backends().with_health_registry(registry.clone());
        registry.force_open("sequential");
        let a = monge(32, 32, 47);
        let problems = vec![Problem::row_minima(&a); 3];
        let report = d.solve_batch_report(&problems, &BatchPolicy::default().without_calibration());
        for (r, tel) in report.results.iter().zip(&report.telemetry) {
            let (expected, _) = Dispatcher::with_default_backends()
                .solve_guarded_with(&problems[0], &GuardPolicy::default(), Tuning::from_env())
                .unwrap();
            assert_eq!(r.as_ref().unwrap(), &expected);
            assert!(
                tel.breaker_skips >= 1,
                "denied fused path is counted: {}",
                tel.breaker_skips
            );
            let path = tel.guard.as_ref().unwrap().fallback_path();
            assert!(
                !path.contains(&BATCH),
                "members bypassed the fused path, got {path:?}"
            );
            assert!(
                !path.contains(&"sequential"),
                "guarded walk also skips the open circuit, got {path:?}"
            );
        }
    }

    #[test]
    fn service_index_handles_are_cached_and_reusable_across_drains() {
        let a = monge(24, 24, 61);
        let p = Problem::rows(&a, Structure::Monge, Objective::Minimize);
        let mut svc: SolverService<'_, i64> =
            SolverService::new(BatchPolicy::default().without_calibration());
        let ix = svc.build_index("alpha", "costs", &p).unwrap();
        let tel = svc.tenant_telemetry("alpha").unwrap().clone();
        assert_eq!(tel.index_builds, 1);
        assert_eq!(tel.index_hits, 0);
        assert_eq!(tel.index_bytes, ix.bytes());
        assert!(tel.evaluations >= 24 * 24);

        // A second build of the same name is a cache hit, not a rebuild.
        let again = svc.build_index("alpha", "costs", &p).unwrap();
        assert!(Arc::ptr_eq(&ix, &again));
        let tel = svc.tenant_telemetry("alpha").unwrap().clone();
        assert_eq!(tel.index_builds, 1);
        assert_eq!(tel.index_hits, 1);

        // Queries served between drains fold into the tenant rollup.
        let ans = ix.query_min(3..19, 1..22).unwrap();
        let mut best = (i64::MAX, usize::MAX, usize::MAX);
        for i in 3..19 {
            for j in 1..22 {
                let v = a.entry(i, j);
                if (v, i, j) < best {
                    best = (v, i, j);
                }
            }
        }
        assert_eq!((ans.value, ans.row, ans.col), best);
        ix.query_max(0..24, 0..24).unwrap();
        svc.submit("alpha", Problem::row_minima(&a)).unwrap();
        assert!(svc.drain().iter().all(Result::is_ok));
        let tel = svc.tenant_telemetry("alpha").unwrap().clone();
        assert_eq!(tel.index_queries, 2);
        assert!(tel.index_probes > 0);

        // The handle survives the drain and keeps serving; the next
        // drain harvests only the new traffic.
        let held = svc.index("alpha", "costs").unwrap();
        held.query_min(0..24, 5..6).unwrap();
        svc.drain();
        assert_eq!(svc.tenant_telemetry("alpha").unwrap().index_queries, 3);

        // drop_index harvests pending counters and evicts the handle.
        held.query_min(1..2, 1..2).unwrap();
        assert!(svc.drop_index("alpha", "costs"));
        assert!(!svc.drop_index("alpha", "costs"));
        assert!(svc.index("alpha", "costs").is_none());
        assert_eq!(svc.tenant_telemetry("alpha").unwrap().index_queries, 4);
        // Outstanding clones still answer after eviction.
        held.query_min(0..1, 0..1).unwrap();
    }

    #[test]
    fn service_index_build_failures_cache_nothing() {
        let a = monge(8, 8, 67);
        let p = Problem::rows(&a, Structure::Plain, Objective::Minimize);
        let mut svc: SolverService<'_, i64> =
            SolverService::new(BatchPolicy::default().without_calibration());
        assert!(matches!(
            svc.build_index("alpha", "plain", &p),
            Err(SolveError::InvalidInput { .. })
        ));
        assert!(svc.index("alpha", "plain").is_none());
        assert!(svc.tenant_telemetry("alpha").is_none());
    }

    #[test]
    fn invalid_inputs_fail_individually_not_batchwide() {
        let a = monge(8, 8, 19);
        let bad_boundary = vec![2usize, 5, 1, 1, 1, 1, 1, 1]; // not non-increasing
        let problems = vec![
            Problem::row_minima(&a),
            Problem::staircase_row_minima(&a, &bad_boundary),
        ];
        let d = Dispatcher::with_default_backends();
        let results = d.solve_batch(&problems, BatchPolicy::default().without_calibration());
        assert!(results[0].is_ok());
        assert!(matches!(results[1], Err(SolveError::InvalidInput { .. })));
    }
}
