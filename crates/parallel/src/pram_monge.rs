//! Row minima / maxima of (inverse-)Monge arrays on the simulated PRAM —
//! the Table 1.1 engines, including the rectangular reductions of the
//! paper's Lemma 2.1.
//!
//! ## Structure
//!
//! The square-array routine is the recursive row-halving divide & conquer:
//! the middle row's optimum is found by a parallel minimum over its
//! candidate interval, and the two halves are solved as parallel branches
//! (fork/join accounting). The minimum-finding primitive is pluggable
//! ([`MinPrimitive`]), reproducing each machine row of Table 1.1:
//!
//! * `Tree` (CREW): `⌈lg w⌉`-step binary-tree minimum — measured time
//!   `O(lg m · lg n)`.
//! * `DoublyLog` (CRCW): `O(lg lg w)`-step accelerated cascades — measured
//!   time `O(lg m · lg lg n)`.
//! * `Constant` (CRCW, `w²/2` processors): 3-step pairwise minimum —
//!   measured time `O(lg m)`, the cited \[AP89a\] bound's shape.
//! * `Combining` (CRCW with `Min` write resolution): 1-step minimum.
//!
//! The square primitive the paper *cites* from \[AP89a\] is not described in
//! the extended abstract; `Constant`/`Combining` model it exactly
//! (`O(lg n)` total), while `DoublyLog` shows the honest cost with only
//! `n` standard-CRCW processors (an extra `lg lg n` factor). See
//! DESIGN.md §3.
//!
//! Lemma 2.1's rectangular algorithm ([`pram_row_minima_rect`]) is
//! implemented verbatim: for `m ≥ n`, solve every `⌈m/n⌉`-th row and
//! fill in the `O(m)` remaining candidates; for `m < n`, split into
//! `⌈n/m⌉` squares and combine per-row.

use monge_core::array2d::{Array2d, Negate, ReverseCols};
use monge_core::value::Value;
use monge_pram::machine::{Mode, Pram};
use monge_pram::ops::{combining_min, crcw_min_doubly_log, crcw_min_quadratic, tree_min, VI};
use monge_pram::{Metrics, WritePolicy};

/// The parallel minimum primitive — selects the machine model and the
/// measured time shape (see module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MinPrimitive {
    /// CREW binary tree, `⌈lg w⌉ + 1` steps, `w/2` processors.
    Tree,
    /// CRCW accelerated cascades, `O(lg lg w)` steps, `w` processors.
    DoublyLog,
    /// CRCW pairwise, 3 steps, `w²/2` processors.
    Constant,
    /// Combining-`Min` CRCW, 1 step, `w` processors.
    Combining,
}

impl MinPrimitive {
    /// The PRAM mode this primitive requires.
    pub fn mode(self) -> Mode {
        match self {
            MinPrimitive::Tree => Mode::Crew,
            MinPrimitive::DoublyLog | MinPrimitive::Constant => Mode::Crcw(WritePolicy::Arbitrary),
            MinPrimitive::Combining => Mode::Crcw(WritePolicy::Min),
        }
    }
}

/// Result of a PRAM engine run: the answer plus the machine's accounting.
#[derive(Clone, Debug)]
pub struct PramRun {
    /// Per-row argmin/argmax (leftmost).
    pub index: Vec<usize>,
    /// Simulator metrics (steps on the critical path, work, …).
    pub metrics: Metrics,
    /// The analytical processor budget of the algorithm as stated in the
    /// paper's tables (e.g. `n` for Table 1.1 CRCW).
    pub processors: u64,
}

/// A machine wrapper holding the PRAM plus the entry oracle convention:
/// "a processor can compute the `(i,j)`-th entry … in `O(1)` time"
/// (§1.2), so loading `w` candidates of one row costs one step with `w`
/// processors.
pub(crate) struct Engine<T: Value> {
    pub pram: Pram<VI<T>>,
    pub prim: MinPrimitive,
    /// When `Some(n)`, column indices are stored mirrored (`n - 1 - j`)
    /// in the `VI` cells, so the lexicographic minimum prefers the
    /// *rightmost* column on ties — needed by the reverse-and-negate
    /// maxima reduction, whose mirrored leftmost optimum is a rightmost
    /// minimum.
    pub mirror: Option<usize>,
}

impl<T: Value> Engine<T> {
    pub fn new(prim: MinPrimitive) -> Self {
        Self {
            pram: Pram::new(prim.mode()),
            prim,
            mirror: None,
        }
    }

    #[inline]
    fn encode(&self, col: usize) -> usize {
        self.mirror.map_or(col, |n| n - 1 - col)
    }

    #[inline]
    fn decode(&self, enc: usize) -> usize {
        self.mirror.map_or(enc, |n| n - 1 - enc)
    }

    /// Leftmost minimum of `a[row, lo..hi)`: one load step with `hi-lo`
    /// processors, then the selected minimum primitive. Returns
    /// `(argmin, value)`.
    pub fn interval_min<A: Array2d<T>>(
        &mut self,
        a: &A,
        row: usize,
        lo: usize,
        hi: usize,
    ) -> (usize, T) {
        debug_assert!(lo < hi);
        let w = hi - lo;
        let region = self.pram.alloc(w, VI::new(T::ZERO, 0));
        let start = region.start;
        let encoded: Vec<usize> = (lo..hi).map(|j| self.encode(j)).collect();
        // Host-side batched evaluation: the simulated load step is one
        // step with `w` processors either way (the §1.2 entry-oracle
        // convention), but fetching the whole interval through
        // `fill_row` lets implicit arrays amortize their per-row work.
        let mut vals = vec![T::ZERO; w];
        a.fill_row(row, lo..hi, &mut vals);
        self.pram.step(w, |ctx| {
            let k = ctx.proc();
            ctx.write(start + k, VI::new(vals[k], encoded[k]));
        });
        let at = match self.prim {
            MinPrimitive::Tree => tree_min(&mut self.pram, region),
            MinPrimitive::DoublyLog => crcw_min_doubly_log(
                &mut self.pram,
                region,
                VI::new(T::ZERO, 0),
                VI::new(T::ZERO, 1),
            ),
            MinPrimitive::Constant => {
                let dst = self.pram.alloc(1, VI::new(T::ZERO, 0)).start;
                crcw_min_quadratic(
                    &mut self.pram,
                    region,
                    dst,
                    VI::new(T::ZERO, 0),
                    VI::new(T::ZERO, 1),
                );
                dst
            }
            MinPrimitive::Combining => combining_min(&mut self.pram, region),
        };
        let cell = self.pram.peek(at);
        (self.decode(cell.i as usize), cell.v)
    }

    /// One-step minimum over explicit `(value, index)` candidates already
    /// known to the host (used when combining subproblem results).
    pub fn combine_candidates(&mut self, cands: &[(T, usize)]) -> (usize, T) {
        assert!(!cands.is_empty());
        let region = self.pram.alloc(cands.len(), VI::new(T::ZERO, 0));
        let start = region.start;
        let cands_vec: Vec<VI<T>> = cands.iter().map(|&(v, j)| VI::new(v, j)).collect();
        self.pram.step(cands.len(), |ctx| {
            let k = ctx.proc();
            ctx.write(start + k, cands_vec[k]);
        });
        let at = match self.prim {
            MinPrimitive::Tree => tree_min(&mut self.pram, region),
            MinPrimitive::DoublyLog => crcw_min_doubly_log(
                &mut self.pram,
                region,
                VI::new(T::ZERO, 0),
                VI::new(T::ZERO, 1),
            ),
            MinPrimitive::Constant => {
                let dst = self.pram.alloc(1, VI::new(T::ZERO, 0)).start;
                crcw_min_quadratic(
                    &mut self.pram,
                    region,
                    dst,
                    VI::new(T::ZERO, 0),
                    VI::new(T::ZERO, 1),
                );
                dst
            }
            MinPrimitive::Combining => combining_min(&mut self.pram, region),
        };
        let cell = self.pram.peek(at);
        (cell.i as usize, cell.v)
    }
}

/// Recursive halving over rows: fills `out[r0..r1]`.
fn rec<T: Value, A: Array2d<T>>(
    eng: &mut Engine<T>,
    a: &A,
    r0: usize,
    r1: usize,
    c0: usize,
    c1: usize,
    out: &mut [usize],
) {
    monge_core::guard::checkpoint();
    if r0 >= r1 {
        return;
    }
    let mid = r0 + (r1 - r0) / 2;
    let (best, _) = eng.interval_min(a, mid, c0, c1);
    out[mid] = best;
    if r1 - r0 == 1 {
        return;
    }
    eng.pram.fork();
    rec(eng, a, r0, mid, c0, best + 1, out);
    eng.pram.branch_done();
    rec(eng, a, mid + 1, r1, best, c1, out);
    eng.pram.branch_done();
    eng.pram.join();
}

/// Row minima of a Monge array by parallel divide & conquer on the
/// simulated PRAM (the square-array primitive of Lemma 2.1).
pub fn pram_row_minima_dc<T: Value, A: Array2d<T>>(a: &A, prim: MinPrimitive) -> PramRun {
    dc_with_mirror(a, prim, None)
}

fn dc_with_mirror<T: Value, A: Array2d<T>>(
    a: &A,
    prim: MinPrimitive,
    mirror: Option<usize>,
) -> PramRun {
    let (m, n) = (a.rows(), a.cols());
    assert!(n > 0);
    let mut eng = Engine::new(prim);
    eng.mirror = mirror;
    let mut out = vec![0usize; m];
    rec(&mut eng, a, 0, m, 0, n, &mut out);
    PramRun {
        index: out,
        metrics: eng.pram.metrics().clone(),
        processors: (m + n) as u64,
    }
}

/// Lemma 2.1: row minima of an `m × n` Monge array in `O(lg m + lg n)`
/// time using `(m / lg m) + n` processors (CRCW).
pub fn pram_row_minima_rect<T: Value, A: Array2d<T>>(a: &A, prim: MinPrimitive) -> PramRun {
    let (m, n) = (a.rows(), a.cols());
    assert!(m > 0 && n > 0);
    let mut eng = Engine::new(prim);
    let mut out = vec![0usize; m];

    if m >= n {
        // Case 1: solve the n sampled rows (every ⌈m/n⌉-th), then the
        // remaining row minima are sandwiched — O(m) candidates total.
        let s = m.div_ceil(n);
        let sampled: Vec<usize> = (0..m).step_by(s).collect();
        // Sampled subproblem via the square routine on a row-selected view.
        let view = monge_core::array2d::SelectRows::new(a, sampled.clone());
        let mut sub = vec![0usize; sampled.len()];
        rec(&mut eng, &view, 0, sampled.len(), 0, n, &mut sub);
        for (k, &row) in sampled.iter().enumerate() {
            out[row] = sub[k];
        }
        // Fill-in: every remaining row in parallel (one branch each);
        // each scans the interval between its sampled neighbours' minima
        // — O(m) candidates in total.
        eng.pram.fork();
        for (k, &row) in sampled.iter().enumerate() {
            let lo = sub[k];
            let hi = if k + 1 < sampled.len() {
                sub[k + 1]
            } else {
                n - 1
            };
            let next_row = if k + 1 < sampled.len() {
                sampled[k + 1]
            } else {
                m
            };
            #[allow(clippy::needless_range_loop)] // r is a row id, not a slice index
            for r in row + 1..next_row {
                let (j, _) = eng.interval_min(a, r, lo, hi + 1);
                out[r] = j;
                eng.pram.branch_done();
            }
        }
        eng.pram.join();
    } else {
        // Case 2: partition the columns into ⌈n/m⌉ blocks of width ≤ m,
        // solve each square in parallel, then combine per row.
        let blocks: Vec<(usize, usize)> = (0..n).step_by(m).map(|c| (c, (c + m).min(n))).collect();
        let mut block_res: Vec<Vec<usize>> = Vec::with_capacity(blocks.len());
        eng.pram.fork();
        for &(c0, c1) in &blocks {
            let mut sub = vec![0usize; m];
            rec(&mut eng, a, 0, m, c0, c1, &mut sub);
            block_res.push(sub);
            eng.pram.branch_done();
        }
        eng.pram.join();
        // Per-row combination over the block winners.
        eng.pram.fork();
        for (row, o) in out.iter_mut().enumerate() {
            let cands: Vec<(T, usize)> = block_res
                .iter()
                .map(|sub| (a.entry(row, sub[row]), sub[row]))
                .collect();
            let (j, _) = eng.combine_candidates(&cands);
            *o = j;
            eng.pram.branch_done();
        }
        eng.pram.join();
    }

    PramRun {
        index: out,
        metrics: eng.pram.metrics().clone(),
        processors: (m / (usize::BITS - m.leading_zeros()).max(1) as usize + n) as u64,
    }
}

/// Row minima of a Monge array within **non-decreasing** validity bands
/// `[lo_i, hi_i)` on the simulated PRAM (the banded class of
/// [`monge_core::banded`]); rows with empty bands yield `None`.
pub fn pram_banded_row_minima_monge<T: Value, A: Array2d<T>>(
    a: &A,
    lo: &[usize],
    hi: &[usize],
    prim: MinPrimitive,
) -> (Vec<Option<usize>>, Metrics) {
    let m = a.rows();
    assert_eq!(lo.len(), m);
    assert_eq!(hi.len(), m);
    debug_assert!(lo.windows(2).all(|w| w[0] <= w[1]) && hi.windows(2).all(|w| w[0] <= w[1]));
    let mut eng: Engine<T> = Engine::new(prim);
    let mut out = vec![None; m];
    let rows: Vec<usize> = (0..m).filter(|&i| lo[i] < hi[i]).collect();
    if !rows.is_empty() {
        banded_rec(
            &mut eng,
            a,
            lo,
            hi,
            &rows,
            0,
            rows.len(),
            0,
            a.cols(),
            &mut out,
        );
    }
    (out, eng.pram.metrics().clone())
}

/// Row maxima of a Monge array within **non-increasing** bands on the
/// simulated PRAM, via the reverse-and-negate reduction (bands map to
/// non-decreasing minima bands under column reversal).
pub fn pram_banded_row_maxima_monge<T: Value, A: Array2d<T>>(
    a: &A,
    lo: &[usize],
    hi: &[usize],
    prim: MinPrimitive,
) -> (Vec<Option<usize>>, Metrics) {
    let n = a.cols();
    let t = Negate(ReverseCols(a));
    let rlo: Vec<usize> = hi.iter().map(|&h| n - h).collect();
    let rhi: Vec<usize> = lo.iter().map(|&l| n - l).collect();
    let m = a.rows();
    assert_eq!(lo.len(), m);
    let mut eng: Engine<T> = Engine::new(prim);
    eng.mirror = Some(n);
    let mut out = vec![None; m];
    let rows: Vec<usize> = (0..m).filter(|&i| rlo[i] < rhi[i]).collect();
    if !rows.is_empty() {
        banded_rec(
            &mut eng,
            &t,
            &rlo,
            &rhi,
            &rows,
            0,
            rows.len(),
            0,
            n,
            &mut out,
        );
    }
    let metrics = eng.pram.metrics().clone();
    (
        out.into_iter().map(|o| o.map(|j| n - 1 - j)).collect(),
        metrics,
    )
}

#[allow(clippy::too_many_arguments)]
fn banded_rec<T: Value, A: Array2d<T>>(
    eng: &mut Engine<T>,
    a: &A,
    lo: &[usize],
    hi: &[usize],
    rows: &[usize],
    r0: usize,
    r1: usize,
    cur_lo: usize,
    cur_hi: usize,
    out: &mut [Option<usize>],
) {
    if r0 >= r1 {
        return;
    }
    let mid = r0 + (r1 - r0) / 2;
    let row = rows[mid];
    let from = cur_lo.max(lo[row]);
    let to = cur_hi.min(hi[row]);
    debug_assert!(from < to);
    let (best, _) = eng.interval_min(a, row, from, to);
    out[row] = Some(best);
    if r1 - r0 == 1 {
        return;
    }
    eng.pram.fork();
    banded_rec(eng, a, lo, hi, rows, r0, mid, cur_lo, best + 1, out);
    eng.pram.branch_done();
    banded_rec(eng, a, lo, hi, rows, mid + 1, r1, best, cur_hi, out);
    eng.pram.branch_done();
    eng.pram.join();
}

/// Row maxima of a Monge array on the PRAM (Table 1.1's problem),
/// leftmost tie-break, via the reverse-and-negate reduction.
pub fn pram_row_maxima_monge<T: Value, A: Array2d<T>>(a: &A, prim: MinPrimitive) -> PramRun {
    let n = a.cols();
    // Leftmost maxima of A = mirrored leftmost minima of the reflected
    // negated array (the VI index encodes the mirrored column, so the
    // lexicographic minimum already prefers the rightmost original
    // column, i.e. the leftmost after mirroring back).
    let t = Negate(ReverseCols(a));
    let mut run = dc_with_mirror(&t, prim, Some(n));
    for j in run.index.iter_mut() {
        *j = n - 1 - *j;
    }
    run
}

/// Row minima of a Monge array (direct).
pub fn pram_row_minima_monge<T: Value, A: Array2d<T>>(a: &A, prim: MinPrimitive) -> PramRun {
    pram_row_minima_dc(a, prim)
}

/// Row maxima of an inverse-Monge array on the PRAM (the Figure 1.1
/// geometry case).
pub fn pram_row_maxima_inverse_monge<T: Value, A: Array2d<T>>(
    a: &A,
    prim: MinPrimitive,
) -> PramRun {
    pram_row_minima_dc(&Negate(a), prim)
}

/// Row minima of an inverse-Monge array on the PRAM: column reversal
/// restores the Monge property, and the mirrored `VI` index encoding
/// keeps the tie-break leftmost in original columns.
pub fn pram_row_minima_inverse_monge<T: Value, A: Array2d<T>>(
    a: &A,
    prim: MinPrimitive,
) -> PramRun {
    let n = a.cols();
    let t = ReverseCols(a);
    let mut run = dc_with_mirror(&t, prim, Some(n));
    for j in run.index.iter_mut() {
        *j = n - 1 - *j;
    }
    run
}

#[cfg(test)]
mod tests {
    use super::*;
    use monge_core::generators::random_monge_dense;
    use monge_core::monge::{brute_row_maxima, brute_row_minima};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn all_prims() -> [MinPrimitive; 4] {
        [
            MinPrimitive::Tree,
            MinPrimitive::DoublyLog,
            MinPrimitive::Constant,
            MinPrimitive::Combining,
        ]
    }

    #[test]
    fn dc_matches_brute_under_every_primitive() {
        let mut rng = StdRng::seed_from_u64(80);
        for prim in all_prims() {
            for &(m, n) in &[(1usize, 1usize), (7, 5), (16, 16), (30, 9)] {
                let a = random_monge_dense(m, n, &mut rng);
                let run = pram_row_minima_dc(&a, prim);
                assert_eq!(run.index, brute_row_minima(&a), "{prim:?} {m}x{n}");
            }
        }
    }

    #[test]
    fn rect_matches_brute_both_cases() {
        let mut rng = StdRng::seed_from_u64(81);
        for prim in [MinPrimitive::DoublyLog, MinPrimitive::Tree] {
            for &(m, n) in &[(50usize, 7usize), (7, 50), (64, 64), (33, 5), (5, 33)] {
                let a = random_monge_dense(m, n, &mut rng);
                let run = pram_row_minima_rect(&a, prim);
                assert_eq!(run.index, brute_row_minima(&a), "{prim:?} {m}x{n}");
            }
        }
    }

    #[test]
    fn maxima_matches_brute() {
        let mut rng = StdRng::seed_from_u64(82);
        let a = random_monge_dense(24, 18, &mut rng);
        let run = pram_row_maxima_monge(&a, MinPrimitive::DoublyLog);
        assert_eq!(run.index, brute_row_maxima(&a));
    }

    #[test]
    fn inverse_maxima_matches_brute() {
        use monge_core::array2d::Negate;
        let mut rng = StdRng::seed_from_u64(83);
        let base = random_monge_dense(15, 21, &mut rng);
        let a = Negate(&base).to_dense();
        let run = pram_row_maxima_inverse_monge(&a, MinPrimitive::Constant);
        assert_eq!(run.index, brute_row_maxima(&a));
    }

    #[test]
    fn inverse_minima_matches_brute_and_stays_leftmost() {
        use monge_core::array2d::{Dense, Negate};
        let mut rng = StdRng::seed_from_u64(89);
        let base = random_monge_dense(18, 14, &mut rng);
        let a = Negate(&base).to_dense();
        for prim in all_prims() {
            let run = pram_row_minima_inverse_monge(&a, prim);
            assert_eq!(run.index, brute_row_minima(&a), "{prim:?}");
        }
        // Plateau: the mirrored reduction must still prefer the leftmost
        // original column on ties.
        let flat = Dense::filled(6, 8, 2i64);
        assert_eq!(
            pram_row_minima_inverse_monge(&flat, MinPrimitive::DoublyLog).index,
            vec![0; 6]
        );
    }

    #[test]
    fn constant_primitive_is_logarithmic_in_steps() {
        let mut rng = StdRng::seed_from_u64(84);
        let a = random_monge_dense(64, 64, &mut rng);
        let run = pram_row_minima_dc(&a, MinPrimitive::Constant);
        // lg 64 = 6 levels, ≤ 4 steps each (load + 3-step min).
        assert!(run.metrics.steps <= 4 * 7, "steps = {}", run.metrics.steps);
    }

    #[test]
    fn tree_primitive_costs_an_extra_log_factor() {
        let mut rng = StdRng::seed_from_u64(85);
        let a = random_monge_dense(64, 64, &mut rng);
        let t = pram_row_minima_dc(&a, MinPrimitive::Tree).metrics.steps;
        let c = pram_row_minima_dc(&a, MinPrimitive::Constant).metrics.steps;
        assert!(t > c, "tree {t} should exceed constant {c}");
    }

    #[test]
    fn work_is_near_linear_per_level() {
        let mut rng = StdRng::seed_from_u64(86);
        let n = 128usize;
        let a = random_monge_dense(n, n, &mut rng);
        let run = pram_row_minima_dc(&a, MinPrimitive::DoublyLog);
        // Work O(n lg n) with a modest constant.
        let bound = 32 * (n as u64) * 7; // lg 128 = 7
        assert!(run.metrics.work <= bound, "work = {}", run.metrics.work);
    }

    #[test]
    fn banded_minima_matches_core() {
        use monge_core::banded::{banded_row_minima_brute, banded_row_minima_monge};
        let mut rng = StdRng::seed_from_u64(87);
        for trial in 0..20 {
            let (m, n) = (1 + trial % 12, 1 + (trial * 5) % 12);
            let a = random_monge_dense(m, n, &mut rng);
            let (lo, hi) = random_incr_bands(m, n, &mut rng);
            let want = banded_row_minima_brute(&a, &lo, &hi);
            assert_eq!(banded_row_minima_monge(&a, &lo, &hi), want);
            let (got, _) = pram_banded_row_minima_monge(&a, &lo, &hi, MinPrimitive::DoublyLog);
            assert_eq!(got, want, "trial {trial}");
        }
    }

    #[test]
    fn banded_maxima_matches_core() {
        use monge_core::banded::{banded_row_maxima_brute, banded_row_maxima_monge};
        let mut rng = StdRng::seed_from_u64(88);
        for trial in 0..20 {
            let (m, n) = (1 + (trial * 3) % 12, 1 + (trial * 7) % 12);
            let a = random_monge_dense(m, n, &mut rng);
            let (mut lo, mut hi) = random_incr_bands(m, n, &mut rng);
            lo.reverse();
            hi.reverse();
            let want = banded_row_maxima_brute(&a, &lo, &hi);
            assert_eq!(banded_row_maxima_monge(&a, &lo, &hi), want);
            let (got, _) = pram_banded_row_maxima_monge(&a, &lo, &hi, MinPrimitive::Constant);
            assert_eq!(got, want, "trial {trial}");
        }
    }

    fn random_incr_bands(m: usize, n: usize, rng: &mut StdRng) -> (Vec<usize>, Vec<usize>) {
        use rand::RngExt;
        let mut lo: Vec<usize> = (0..m).map(|_| rng.random_range(0..=n)).collect();
        let mut hi: Vec<usize> = (0..m).map(|_| rng.random_range(0..=n)).collect();
        lo.sort_unstable();
        hi.sort_unstable();
        let lo: Vec<usize> = lo.iter().zip(&hi).map(|(&l, &h)| l.min(h)).collect();
        (lo, hi)
    }

    #[test]
    fn tie_break_is_leftmost() {
        use monge_core::array2d::Dense;
        let a = Dense::filled(9, 9, 5i64);
        for prim in all_prims() {
            assert_eq!(pram_row_minima_dc(&a, prim).index, vec![0; 9], "{prim:?}");
            assert_eq!(
                pram_row_maxima_monge(&a, prim).index,
                vec![0; 9],
                "{prim:?}"
            );
        }
    }
}
