//! Tube minima / maxima of Monge-composite arrays on the simulated
//! hypercube — Theorem 3.4.
//!
//! ## Model
//!
//! `p·q + q·r` input entries are distributed over the network per §1.2
//! ("the entries of `D` and `E` are uniformly distributed among the local
//! memories"): `d[i,j]` lives at node `i·q + j`, `e[j,k]` at node
//! `j·r + k`. A candidate evaluation `(i,j,k)` therefore requires *both*
//! a `D`-fetch and an `E`-fetch through the network.
//!
//! ## Structure
//!
//! A doubly-nested divide & conquer exploiting the double monotonicity of
//! the optimizing middle coordinate (non-decreasing in `i` and in `k`):
//! planes are halved (outer), and each active plane's row problem is
//! halved over `k` (inner), with `j`-intervals clipped by both the
//! neighbouring solved planes and the within-plane neighbours. All active
//! blocks of a sub-level are evaluated together: candidates are laid out
//! consecutively, their `D`/`E` operands are brought in by two
//! [`monge_hypercube::ops::sorted_gather`] calls (sort-based
//! random-access reads), and a segmented minimum scan finds each block's
//! optimum.
//!
//! The paper states `Θ(lg n)` on `n²` processors with the proof omitted;
//! our sort-based data movement yields a measured `O(lg³ n)`-ish time on
//! the same processor count (each of the `O(lg² n)` sub-levels pays
//! `O(lg n)`–`O(lg² n)` for its gathers). See DESIGN.md §3 for this
//! documented deviation.

use crate::hc_monge::HW;
use monge_core::array2d::Array2d;
use monge_core::tube::TubeExtrema;
use monge_core::value::Value;
use monge_hypercube::ops::{segmented_scan_inclusive, sorted_gather};
use monge_hypercube::topology::EmulationCost;
use monge_hypercube::{Hypercube, NetMetrics, Reg};

/// Result of a hypercube tube run.
#[derive(Clone, Debug)]
pub struct HcTubeRun<T> {
    /// Per-tube argmin and values.
    pub extrema: TubeExtrema<T>,
    /// Network metrics.
    pub metrics: NetMetrics,
    /// CCC / shuffle-exchange pricing of the recorded trace.
    pub emulation: EmulationCost,
}

/// One candidate block: find `argmin_j d[plane,j] + e[j,k]` over
/// `j ∈ [lo, hi)`.
#[derive(Clone, Copy, Debug)]
struct GBlock {
    plane: usize,
    k: usize,
    lo: usize,
    hi: usize,
}

struct TubeEngine<T: Value> {
    hc: Hypercube<HW<T>>,
    rd: Reg,
    re: Reg,
    valid: Reg,
    dkey: Reg,
    ekey: Reg,
    dresp: Reg,
    eresp: Reg,
    flag: Reg,
    jcol: Reg,
    cand: Reg,
    q: usize,
    r: usize,
}

impl<T: Value> TubeEngine<T> {
    fn new<A: Array2d<T>, B: Array2d<T>>(d: &A, e: &B) -> Self {
        let (p, q, r) = (d.rows(), d.cols(), e.cols());
        let need = (p * q).max(q * r).max(2 * (q + r)).max(2);
        let dim = usize::BITS as usize - (need - 1).leading_zeros() as usize;
        let mut hc = Hypercube::new(dim);
        let rd = hc.alloc_reg(HW::inf());
        let re = hc.alloc_reg(HW::inf());
        let valid = hc.alloc_reg(HW::inf());
        let dkey = hc.alloc_reg(HW::inf());
        let ekey = hc.alloc_reg(HW::inf());
        let dresp = hc.alloc_reg(HW::inf());
        let eresp = hc.alloc_reg(HW::inf());
        let flag = hc.alloc_reg(HW::inf());
        let jcol = hc.alloc_reg(HW::inf());
        let cand = hc.alloc_reg(HW::inf());
        // Distribute D and E row-major over the nodes; rows are fetched
        // batched so implicit factors amortize their per-row work.
        let mut row = vec![T::ZERO; q.max(r)];
        let mut dv = vec![HW::inf(); hc.nodes()];
        for i in 0..p {
            d.fill_row(i, 0..q, &mut row[..q]);
            for (j, &v) in row[..q].iter().enumerate() {
                dv[i * q + j] = HW::new(v, 0);
            }
        }
        hc.load(rd, &dv);
        let mut ev = vec![HW::inf(); hc.nodes()];
        for j in 0..q {
            e.fill_row(j, 0..r, &mut row[..r]);
            for (k, &v) in row[..r].iter().enumerate() {
                ev[j * r + k] = HW::new(v, 0);
            }
        }
        hc.load(re, &ev);
        Self {
            hc,
            rd,
            re,
            valid,
            dkey,
            ekey,
            dresp,
            eresp,
            flag,
            jcol,
            cand,
            q,
            r,
        }
    }

    fn one() -> HW<T> {
        HW { v: T::ZERO, ix: 1 }
    }
    fn zero() -> HW<T> {
        HW { v: T::ZERO, ix: 0 }
    }

    /// Evaluates all blocks of one sub-level, possibly in several sweeps,
    /// returning each block's `(argmin, value)`.
    fn level(&mut self, blocks: &[GBlock]) -> Vec<(usize, T)> {
        let n = self.hc.nodes();
        let mut results = vec![(0usize, T::INFINITY); blocks.len()];
        let mut sweep: Vec<usize> = Vec::new();
        let mut used = 0usize;
        for b in 0..=blocks.len() {
            let w = if b < blocks.len() {
                blocks[b].hi - blocks[b].lo
            } else {
                0
            };
            if (b == blocks.len() || used + w > n) && !sweep.is_empty() {
                self.run_sweep(blocks, &sweep, &mut results);
                sweep.clear();
                used = 0;
            }
            if b < blocks.len() {
                assert!(w <= n, "single block wider than the machine");
                sweep.push(b);
                used += w;
            }
        }
        results
    }

    fn run_sweep(&mut self, blocks: &[GBlock], sweep: &[usize], results: &mut [(usize, T)]) {
        let n = self.hc.nodes();
        let mark = self.hc.reg_mark();
        let mut validv = vec![Self::zero(); n];
        let mut dkeyv = vec![HW::inf(); n];
        let mut ekeyv = vec![HW::inf(); n];
        let mut flagv = vec![Self::zero(); n];
        let mut jcolv = vec![Self::zero(); n];
        let mut ends: Vec<(usize, usize)> = Vec::with_capacity(sweep.len()); // (block, last node)
        let mut t = 0usize;
        for &b in sweep {
            let blk = blocks[b];
            flagv[t] = Self::one();
            for j in blk.lo..blk.hi {
                validv[t] = Self::one();
                dkeyv[t] = HW {
                    v: T::ZERO,
                    ix: (blk.plane * self.q + j) as i64,
                };
                ekeyv[t] = HW {
                    v: T::ZERO,
                    ix: (j * self.r + blk.k) as i64,
                };
                jcolv[t] = HW {
                    v: T::ZERO,
                    ix: j as i64,
                };
                t += 1;
            }
            ends.push((b, t - 1));
        }
        if t < n {
            flagv[t] = Self::one();
        }
        self.hc.load(self.valid, &validv);
        self.hc.load(self.dkey, &dkeyv);
        self.hc.load(self.ekey, &ekeyv);
        self.hc.load(self.flag, &flagv);
        self.hc.load(self.jcol, &jcolv);

        let (one, zero) = (Self::one(), Self::zero());
        sorted_gather(
            &mut self.hc,
            self.valid,
            one,
            zero,
            self.dkey,
            |c| c.ix as usize,
            |k| HW {
                v: T::ZERO,
                ix: k as i64,
            },
            self.rd,
            self.dresp,
            HW::inf(),
        );
        // The first gather consumed/permuted `valid`; restore it.
        self.hc.load(self.valid, &validv);
        sorted_gather(
            &mut self.hc,
            self.valid,
            one,
            zero,
            self.ekey,
            |c| c.ix as usize,
            |k| HW {
                v: T::ZERO,
                ix: k as i64,
            },
            self.re,
            self.eresp,
            HW::inf(),
        );
        self.hc.load(self.valid, &validv);

        let (dresp, eresp, valid, jcol, cand) =
            (self.dresp, self.eresp, self.valid, self.jcol, self.cand);
        self.hc.local(|_, own| {
            if own.get(valid) == one {
                let dv = own.get(dresp).v;
                let ev = own.get(eresp).v;
                let j = own.get(jcol).ix;
                own.set(
                    cand,
                    HW {
                        v: dv.add(ev),
                        ix: j,
                    },
                );
            } else {
                own.set(cand, HW::inf());
            }
        });
        segmented_scan_inclusive(&mut self.hc, self.cand, self.flag, one, |a, b| {
            if b < a {
                b
            } else {
                a
            }
        });
        for &(b, last) in &ends {
            let w = self.hc.peek(last, self.cand);
            results[b] = (w.ix as usize, w.v);
        }
        self.hc.reg_reset(mark);
    }
}

/// Tube minima of the Monge-composite array `c[i,j,k] = d[i,j] + e[j,k]`
/// on the simulated hypercube (Theorem 3.4's problem, minima form).
pub fn hc_tube_minima<T: Value, A: Array2d<T>, B: Array2d<T>>(d: &A, e: &B) -> HcTubeRun<T> {
    assert_eq!(d.cols(), e.rows(), "inner dimensions disagree");
    let (p, q, r) = (d.rows(), d.cols(), e.cols());
    assert!(q > 0);
    let mut eng = TubeEngine::new(d, e);
    let mut arg: Vec<Option<Vec<usize>>> = vec![None; p];

    // Outer halving over planes.
    let mut outer: Vec<(usize, usize)> = vec![(0, p)];
    while !outer.is_empty() {
        monge_core::guard::checkpoint();
        // Bounds for every active middle plane from its solved neighbours.
        let mids: Vec<(usize, Vec<usize>, Vec<usize>)> = outer
            .iter()
            .map(|&(i0, i1)| {
                let mid = i0 + (i1 - i0) / 2;
                let lo = if i0 > 0 {
                    arg[i0 - 1].clone().expect("lower neighbour solved")
                } else {
                    vec![0; r]
                };
                let hi = if i1 < p {
                    arg[i1].clone().expect("upper neighbour solved")
                } else {
                    vec![q - 1; r]
                };
                (mid, lo, hi)
            })
            .collect();

        // Inner halving over k for all middle planes simultaneously.
        // Task: (plane index into mids, k0, k1, jlo, jhi) with the
        // invariant argmin(k) ∈ [jlo, jhi] ∩ [lo[k], hi[k]].
        let mut inner: Vec<(usize, usize, usize, usize, usize)> = mids
            .iter()
            .enumerate()
            .map(|(x, _)| (x, 0, r, 0, q - 1))
            .collect();
        let mut solved_rows: Vec<Vec<usize>> = mids.iter().map(|_| vec![0; r]).collect();
        while !inner.is_empty() {
            monge_core::guard::checkpoint();
            let blocks: Vec<GBlock> = inner
                .iter()
                .map(|&(x, k0, k1, jlo, jhi)| {
                    let (mid, ref lo, ref hi) = mids[x];
                    let km = k0 + (k1 - k0) / 2;
                    let l = jlo.max(lo[km]);
                    let h = jhi.min(hi[km]);
                    debug_assert!(l <= h);
                    GBlock {
                        plane: mid,
                        k: km,
                        lo: l,
                        hi: h + 1,
                    }
                })
                .collect();
            let res = eng.level(&blocks);
            let mut next = Vec::with_capacity(inner.len() * 2);
            for (t, &(x, k0, k1, jlo, jhi)) in inner.iter().enumerate() {
                let km = k0 + (k1 - k0) / 2;
                let (j, _) = res[t];
                solved_rows[x][km] = j;
                if km > k0 {
                    next.push((x, k0, km, jlo, j));
                }
                if km + 1 < k1 {
                    next.push((x, km + 1, k1, j, jhi));
                }
            }
            inner = next;
        }
        for (x, sr) in solved_rows.into_iter().enumerate() {
            arg[mids[x].0] = Some(sr);
        }

        // Split the outer segments.
        let mut next_outer = Vec::with_capacity(outer.len() * 2);
        for &(i0, i1) in &outer {
            let mid = i0 + (i1 - i0) / 2;
            if mid > i0 {
                next_outer.push((i0, mid));
            }
            if mid + 1 < i1 {
                next_outer.push((mid + 1, i1));
            }
        }
        outer = next_outer;
    }

    // Assemble the answers.
    let mut index = Vec::with_capacity(p * r);
    let mut value = Vec::with_capacity(p * r);
    #[allow(clippy::needless_range_loop)] // i also indexes into d's rows below
    for i in 0..p {
        let row = arg[i].as_ref().expect("all planes solved");
        for (k, &j) in row.iter().enumerate() {
            index.push(j);
            value.push(d.entry(i, j).add(e.entry(j, k)));
        }
    }
    let metrics = eng.hc.metrics().clone();
    let emulation = EmulationCost::price(&metrics, eng.hc.dim());
    HcTubeRun {
        extrema: TubeExtrema { p, r, index, value },
        metrics,
        emulation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use monge_core::generators::random_monge_dense;
    use monge_core::tube::tube_minima_brute;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matches_brute_on_random_instances() {
        let mut rng = StdRng::seed_from_u64(120);
        for &(p, q, r) in &[(1usize, 1usize, 1usize), (4, 5, 6), (8, 8, 8), (9, 3, 7)] {
            let d = random_monge_dense(p, q, &mut rng);
            let e = random_monge_dense(q, r, &mut rng);
            let run = hc_tube_minima(&d, &e);
            assert_eq!(run.extrema, tube_minima_brute(&d, &e), "{p}x{q}x{r}");
        }
    }

    #[test]
    fn tie_break_takes_smallest_middle_coordinate() {
        use monge_core::array2d::Dense;
        let d = Dense::filled(4, 4, 1i64);
        let e = Dense::filled(4, 4, 2i64);
        let run = hc_tube_minima(&d, &e);
        assert!(run.extrema.index.iter().all(|&j| j == 0));
    }

    #[test]
    fn steps_are_polylogarithmic() {
        let mut rng = StdRng::seed_from_u64(121);
        let d8 = random_monge_dense(8, 8, &mut rng);
        let e8 = random_monge_dense(8, 8, &mut rng);
        let d16 = random_monge_dense(16, 16, &mut rng);
        let e16 = random_monge_dense(16, 16, &mut rng);
        let s8 = hc_tube_minima(&d8, &e8).metrics.steps();
        let s16 = hc_tube_minima(&d16, &e16).metrics.steps();
        // Doubling n should multiply steps by a polylog ratio, far below
        // the x4 a quadratic-time behaviour would give.
        assert!(s16 <= 3 * s8, "{s8} -> {s16}");
    }
}
