//! Smoke-level conformance pass wired into the dispatch crate's own
//! test suite (through the `monge-conformance` dev-dependency), so a
//! plain `cargo test -p monge-parallel` already runs a miniature
//! differential fuzz and one complexity audit. The full lab — 500+
//! instances per kind, the 2^6..2^14 ladder, corpus replay — lives in
//! `cargo test -p monge-conformance`.

use monge_conformance::audit::{audit, ladder, AuditFamily, BoundShape, BoundSpec};
use monge_conformance::fuzz::{conformance_dispatcher, fuzz_kind};
use monge_core::problem::ProblemKind;

#[test]
fn quick_differential_pass_over_every_kind() {
    let d = conformance_dispatcher();
    for kind in ProblemKind::ALL {
        let report = fuzz_kind(&d, kind, 25, 0x57A7);
        assert!(
            report.mismatches.is_empty(),
            "{kind:?}: backend disagreement {:?}",
            report
                .mismatches
                .iter()
                .map(|m| (&m.backend, m.seed, m.family))
                .collect::<Vec<_>>()
        );
    }
}

#[test]
fn quick_theorem_2_3_audit() {
    let d = conformance_dispatcher();
    let spec = BoundSpec::crcw(BoundShape::LogN, 6.0, BoundShape::Linear, 2.0);
    let report = audit(
        &d,
        "pram:combining",
        AuditFamily::Staircase,
        spec,
        &ladder(6, 10),
        0xC0FFEE,
    );
    assert!(report.ok(), "{report}");
}
