//! Telemetry audit: every dispatched solve must come back with a
//! populated [`Telemetry`](monge_core::problem::Telemetry) — the
//! backend's registry name, the problem kind, a nonzero evaluation
//! count, at least one recorded phase, and phase time bounded by the
//! total. Deterministic (no property-testing dependency) so CI can run
//! it as a dedicated job.

use monge_core::array2d::Dense;
use monge_core::generators::{apply_staircase, random_monge_dense, random_staircase_boundary};
use monge_core::problem::{Problem, ProblemKind, Telemetry};
use monge_parallel::{Dispatcher, Tuning};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn audit(tel: &Telemetry, name: &str, kind: ProblemKind) {
    assert_eq!(tel.backend, name, "telemetry must name its backend");
    assert_eq!(tel.kind, Some(kind), "telemetry must name the kind");
    assert!(
        tel.evaluations > 0,
        "backend {name} on {kind:?} reported zero entry evaluations"
    );
    assert!(
        !tel.phases.is_empty(),
        "backend {name} on {kind:?} recorded no phases"
    );
    assert!(
        tel.phase_nanos() <= tel.total_nanos,
        "backend {name} on {kind:?}: phases exceed the wall-clock total"
    );
}

/// One nonempty instance per [`ProblemKind`], solved on every eligible
/// backend; each solve must populate its telemetry.
#[test]
fn every_backend_populates_telemetry_on_every_kind() {
    let d = Dispatcher::with_all_backends();
    let t = Tuning::DEFAULT;
    let mut rng = StdRng::seed_from_u64(99);
    let (m, n) = (13, 11);
    let a = random_monge_dense(m, n, &mut rng);
    let mut audited = 0usize;
    let mut run_all = |p: &Problem<'_, i64>| {
        for b in d.eligible(p) {
            let (_, tel) = d.solve_on(b.name(), p, t).expect("eligible backend");
            audit(&tel, b.name(), p.kind());
            audited += 1;
        }
    };

    run_all(&Problem::row_minima(&a));
    run_all(&Problem::row_maxima(&a));

    // Rank form so the hypercube backend is audited too.
    let v: Vec<i64> = (0..m as i64).map(|x| 3 * x).collect();
    let w: Vec<i64> = (0..n as i64).map(|y| 5 * y + 1).collect();
    let g = |x: i64, y: i64| (x - y).abs();
    let ranked = Dense::tabulate(m, n, |i, j| g(v[i], w[j]));
    run_all(&Problem::row_minima(&ranked).with_rank(&v, &w, &g));

    // Staircase with a full first row so at least one cell is feasible.
    let mut f = random_staircase_boundary(m, n, &mut rng);
    f[0] = n;
    let sa = apply_staircase(&a, &f);
    run_all(&Problem::staircase_row_minima(&sa, &f));

    // Banded with everywhere-nonempty windows.
    let lo = vec![0usize; m];
    let hi = vec![n; m];
    run_all(&Problem::banded_row_minima(&a, &lo, &hi));
    run_all(&Problem::banded_row_maxima(
        &a,
        &vec![0usize; m],
        &vec![n; m],
    ));

    // Tube.
    let td = random_monge_dense(7, 6, &mut rng);
    let te = random_monge_dense(6, 8, &mut rng);
    run_all(&Problem::tube_minima(&td, &te));
    run_all(&Problem::tube_maxima(&td, &te));

    assert!(
        audited >= ProblemKind::ALL.len(),
        "the audit must cover at least one backend per kind"
    );
}

/// Auto-selected solves (the path the applications take) are just as
/// instrumented as by-name solves.
#[test]
fn auto_selected_solves_are_instrumented() {
    let d = Dispatcher::with_default_backends();
    let mut rng = StdRng::seed_from_u64(100);
    let a = random_monge_dense(40, 33, &mut rng);
    let p = Problem::row_minima(&a);
    let (_, tel) = d.solve(&p);
    audit(&tel, tel.backend, ProblemKind::RowMinima);
    assert!(tel.total_nanos > 0);
}

/// Simulator backends additionally surface their machine model's cost
/// counters through `Telemetry::machine`.
#[test]
fn simulators_report_machine_counters() {
    let d = Dispatcher::with_all_backends();
    let t = Tuning::DEFAULT;
    let mut rng = StdRng::seed_from_u64(101);
    let a = random_monge_dense(12, 12, &mut rng);
    let p = Problem::row_minima(&a);
    for name in [
        "pram:tree",
        "pram:doubly-log",
        "pram:constant",
        "pram:combining",
    ] {
        let (_, tel) = d.solve_on(name, &p, t).expect("pram backend");
        assert!(tel.machine.steps > 0, "{name}: no PRAM steps");
        assert!(tel.machine.work > 0, "{name}: no PRAM work");
        assert!(tel.machine.processors > 0, "{name}: no processor count");
        assert!(tel.machine.reads > 0, "{name}: no shared-memory reads");
        assert!(tel.machine.writes > 0, "{name}: no shared-memory writes");
        assert_eq!(tel.machine.violations, 0, "{name}: model violations");
    }

    // The concurrent-write counter separates the simulated models: the
    // binary fan-in tree is genuinely CREW (zero concurrent-write
    // events — that counter is the model certificate the conformance
    // auditor relies on), while the combining-write primitive exists
    // precisely to exploit concurrent writes.
    let (_, tel) = d.solve_on("pram:tree", &p, t).expect("pram backend");
    assert_eq!(
        tel.machine.concurrent_write_events, 0,
        "tree primitive must simulate clean CREW"
    );
    let (_, tel) = d.solve_on("pram:combining", &p, t).expect("pram backend");
    assert!(
        tel.machine.concurrent_write_events > 0,
        "combining primitive never exercised a concurrent write"
    );

    let v: Vec<i64> = (0..12).map(|x| 2 * x).collect();
    let w: Vec<i64> = (0..12).map(|y| 2 * y + 1).collect();
    let g = |x: i64, y: i64| (x - y).abs();
    let ranked = Dense::tabulate(12, 12, |i, j| g(v[i], w[j]));
    let ph = Problem::row_minima(&ranked).with_rank(&v, &w, &g);
    let (_, tel) = d.solve_on("hypercube", &ph, t).expect("hypercube backend");
    assert!(tel.machine.comm_steps > 0, "hypercube: no communication");
    assert!(tel.machine.messages > 0, "hypercube: no messages");
    assert!(
        tel.machine.se_steps > 0,
        "hypercube: no shuffle-exchange cost"
    );

    // Host parallel runtime counters flow through the same struct-free
    // counters: a rayon solve at forced fan-out reports task spawns.
    let fine = Tuning {
        seq_scan: 1,
        seq_rows: 1,
        tube_seq_planes: 1,
        pram_base_rows: 1,
        ..Tuning::DEFAULT
    };
    let (_, tel) = d.solve_on("rayon", &p, fine).expect("rayon backend");
    assert!(tel.tasks > 0, "rayon: no tracked task spawns");
}
