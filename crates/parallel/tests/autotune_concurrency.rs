//! Single-flight measurement under contention: N threads hitting
//! `solve_calibrated` on the same cold key perform exactly one
//! measurement between them — the losers fall back to the calibration
//! probe (or pick up the cached winner if the race has already been
//! decided) instead of blocking or re-measuring.

use std::sync::{Arc, Barrier};

use monge_core::array2d::Dense;
use monge_core::generators::random_monge_dense;
use monge_core::monge::brute_row_minima;
use monge_core::problem::{Problem, TuningProvenance};
use monge_parallel::{AutotuneMode, Autotuner, Dispatcher};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn n_threads_on_one_cold_key_measure_exactly_once() {
    const THREADS: usize = 8;
    let tuner = Arc::new(Autotuner::in_memory(AutotuneMode::On));
    let dispatcher =
        Arc::new(Dispatcher::<i64>::with_default_backends().with_autotuner(tuner.clone()));
    // One array per thread, identical shape and structure: every
    // problem maps to the same autotune key.
    let arrays: Vec<Dense<i64>> = (0..THREADS)
        .map(|i| {
            let mut rng = StdRng::seed_from_u64(0xC0 + i as u64);
            random_monge_dense(64, 64, &mut rng)
        })
        .collect();
    let barrier = Barrier::new(THREADS);

    let provenances: Vec<TuningProvenance> = std::thread::scope(|scope| {
        let handles: Vec<_> = arrays
            .iter()
            .map(|a| {
                let d = Arc::clone(&dispatcher);
                let barrier = &barrier;
                scope.spawn(move || {
                    barrier.wait();
                    let p = Problem::row_minima(a);
                    let (sol, tel) = d.solve_calibrated(&p);
                    assert_eq!(sol.rows().index, brute_row_minima(a));
                    tel.provenance.expect("calibrated solves stamp provenance")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    assert_eq!(
        tuner.measurements(),
        1,
        "same cold key measured more than once (provenances: {provenances:?})"
    );
    let measured = provenances
        .iter()
        .filter(|&&p| p == TuningProvenance::Measured)
        .count();
    assert_eq!(measured, 1, "exactly one thread owns the measurement");
    // Everyone else either probed (measurement still in flight) or hit
    // the cache (measurement already done) — never `default`.
    assert!(provenances.iter().all(|&p| p != TuningProvenance::Default));

    // The dust has settled: every later solve is a pure cache hit.
    let p = Problem::row_minima(&arrays[0]);
    let (_, tel) = dispatcher.solve_calibrated(&p);
    assert_eq!(tel.provenance, Some(TuningProvenance::Cached));
    assert_eq!(tuner.measurements(), 1);
}
