//! Persistence and robustness tests for the autotune winner table: a
//! valid file warms the next process (simulated here by a fresh
//! [`Autotuner`] on the same directory), and every corruption — a
//! truncated file, a wrong schema version, a wrong host fingerprint, an
//! unwritable directory — silently falls back to measurement (or to the
//! calibration probe in `readonly` mode) without panicking or erroring
//! a solve.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use monge_core::array2d::Dense;
use monge_core::generators::random_monge_dense;
use monge_core::monge::brute_row_minima;
use monge_core::problem::{Problem, TuningProvenance};
use monge_parallel::{AutotuneMode, Autotuner, Dispatcher};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A unique scratch directory per test, without the `tempfile` crate.
fn scratch_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "monge-autotune-test-{}-{}-{}",
        tag,
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn fixture(seed: u64) -> Dense<i64> {
    let mut rng = StdRng::seed_from_u64(seed);
    random_monge_dense(48, 48, &mut rng)
}

fn table_path(dir: &std::path::Path) -> PathBuf {
    dir.join(monge_parallel::autotune::TABLE_FILE)
}

/// Measured winner lands on disk; a fresh instance on the same
/// directory serves it from cache with zero measurements.
#[test]
fn winners_survive_a_process_restart() {
    let dir = scratch_dir("restart");
    let a = fixture(1);
    let p = Problem::row_minima(&a);
    let want = brute_row_minima(&a);

    let cold = Arc::new(Autotuner::with_dir(AutotuneMode::On, &dir));
    let d = Dispatcher::<i64>::with_default_backends().with_autotuner(cold.clone());
    let (sol, tel) = d.solve_calibrated(&p);
    assert_eq!(sol.rows().index, want);
    assert_eq!(tel.provenance, Some(TuningProvenance::Measured));
    assert_eq!(cold.measurements(), 1);
    assert!(table_path(&dir).exists(), "winner table must be written");

    // "Next process": a fresh autotuner seeded from the same directory.
    let warm = Arc::new(Autotuner::with_dir(AutotuneMode::On, &dir));
    let d = Dispatcher::<i64>::with_default_backends().with_autotuner(warm.clone());
    let (sol, tel) = d.solve_calibrated(&p);
    assert_eq!(sol.rows().index, want);
    assert_eq!(tel.provenance, Some(TuningProvenance::Cached));
    assert_eq!(warm.measurements(), 0, "warm cache must not re-measure");

    std::fs::remove_dir_all(&dir).ok();
}

/// Each corruption mode loads as an empty table: the solve re-measures
/// (provenance `measured`, one measurement) and still returns the right
/// answer.
#[test]
fn corrupted_tables_fall_back_to_measurement() {
    let dir = scratch_dir("corrupt");
    let a = fixture(2);
    let p = Problem::row_minima(&a);
    let want = brute_row_minima(&a);

    // Seed a genuine table first.
    let seeder = Arc::new(Autotuner::with_dir(AutotuneMode::On, &dir));
    let d = Dispatcher::<i64>::with_default_backends().with_autotuner(seeder);
    d.solve_calibrated(&p);
    let valid = std::fs::read_to_string(table_path(&dir)).unwrap();

    let corruptions: &[(&str, String)] = &[
        ("truncated", valid[..valid.len() / 2].to_string()),
        ("not json at all", "hello, I am not a table\n".to_string()),
        ("empty", String::new()),
        (
            "wrong schema version",
            valid.replace("\"schema\": ", "\"schema\": 9"),
        ),
        (
            "wrong host fingerprint",
            valid.replace("\"host\": \"", "\"host\": \"other-machine "),
        ),
    ];
    for (what, bytes) in corruptions {
        std::fs::write(table_path(&dir), bytes).unwrap();
        let tuner = Arc::new(Autotuner::with_dir(AutotuneMode::On, &dir));
        assert_eq!(
            tuner.entries().len(),
            0,
            "{what}: corrupt table must seed nothing"
        );
        let d = Dispatcher::<i64>::with_default_backends().with_autotuner(tuner.clone());
        let (sol, tel) = d.solve_calibrated(&p);
        assert_eq!(sol.rows().index, want, "{what}");
        assert_eq!(
            tel.provenance,
            Some(TuningProvenance::Measured),
            "{what}: must re-measure"
        );
        assert_eq!(tuner.measurements(), 1, "{what}");
    }

    std::fs::remove_dir_all(&dir).ok();
}

/// An unwritable directory degrades to memory-only caching: the solve
/// measures, succeeds, and later calls in the same instance hit the
/// in-memory winner — no panic, no error, no file.
#[test]
fn unwritable_directory_degrades_to_memory_only() {
    let dir = scratch_dir("readonly-dir");
    // A *file* where the table's parent directory should be makes every
    // create_dir_all/write fail regardless of uid (chmod-based
    // read-only is a no-op when tests run as root).
    let blocked = dir.join("blocked");
    std::fs::write(&blocked, b"i am a file, not a directory").unwrap();
    let tuner = Arc::new(Autotuner::with_dir(
        AutotuneMode::On,
        blocked.join("nested"),
    ));
    let a = fixture(3);
    let p = Problem::row_minima(&a);
    let d = Dispatcher::<i64>::with_default_backends().with_autotuner(tuner.clone());
    let (sol, tel) = d.solve_calibrated(&p);
    assert_eq!(sol.rows().index, brute_row_minima(&a));
    assert_eq!(tel.provenance, Some(TuningProvenance::Measured));
    // Second call: the in-memory table still serves the winner.
    let (_, tel) = d.solve_calibrated(&p);
    assert_eq!(tel.provenance, Some(TuningProvenance::Cached));
    assert_eq!(tuner.measurements(), 1);

    std::fs::remove_dir_all(&dir).ok();
}

/// `readonly` mode: cached winners are served, cold keys fall back to
/// the calibration probe, and nothing is ever measured or written.
#[test]
fn readonly_mode_serves_hits_and_probes_misses() {
    let dir = scratch_dir("readonly-mode");
    let warm_array = fixture(4);
    let warm = Problem::row_minima(&warm_array);

    // Warm the key with a writing instance first.
    let writer = Arc::new(Autotuner::with_dir(AutotuneMode::On, &dir));
    let d = Dispatcher::<i64>::with_default_backends().with_autotuner(writer);
    d.solve_calibrated(&warm);
    let table_before = std::fs::read_to_string(table_path(&dir)).unwrap();

    let ro = Arc::new(Autotuner::with_dir(AutotuneMode::ReadOnly, &dir));
    let d = Dispatcher::<i64>::with_default_backends().with_autotuner(ro.clone());
    // Hit: served from the loaded table.
    let (sol, tel) = d.solve_calibrated(&warm);
    assert_eq!(sol.rows().index, brute_row_minima(&warm_array));
    assert_eq!(tel.provenance, Some(TuningProvenance::Cached));
    // Miss (different size class): probed, not measured.
    let mut rng = StdRng::seed_from_u64(5);
    let cold_array = random_monge_dense(300, 300, &mut rng);
    let cold = Problem::row_minima(&cold_array);
    let (sol, tel) = d.solve_calibrated(&cold);
    assert_eq!(sol.rows().index, brute_row_minima(&cold_array));
    assert_eq!(tel.provenance, Some(TuningProvenance::Probed));
    assert_eq!(ro.measurements(), 0, "readonly must never measure");
    assert_eq!(
        std::fs::read_to_string(table_path(&dir)).unwrap(),
        table_before,
        "readonly must never write"
    );

    std::fs::remove_dir_all(&dir).ok();
}

/// `off` mode bypasses the table entirely: every solve probes, nothing
/// is measured, nothing is written.
#[test]
fn off_mode_always_probes() {
    let tuner = Arc::new(Autotuner::off());
    let a = fixture(6);
    let p = Problem::row_minima(&a);
    let d = Dispatcher::<i64>::with_default_backends().with_autotuner(tuner.clone());
    for _ in 0..2 {
        let (sol, tel) = d.solve_calibrated(&p);
        assert_eq!(sol.rows().index, brute_row_minima(&a));
        assert_eq!(tel.provenance, Some(TuningProvenance::Probed));
    }
    assert_eq!(tuner.measurements(), 0);
}

/// Explicit tunings keep their `default` provenance: the autotuner only
/// decides for the calibrated entry points.
#[test]
fn explicit_tuning_paths_stamp_default_provenance() {
    let a = fixture(7);
    let p = Problem::row_minima(&a);
    let d = Dispatcher::<i64>::with_default_backends();
    let (_, tel) = d.solve_with(&p, monge_parallel::Tuning::DEFAULT);
    assert_eq!(tel.provenance, Some(TuningProvenance::Default));
    let (_, tel) = d.solve(&p);
    assert_eq!(tel.provenance, Some(TuningProvenance::Default));
}
