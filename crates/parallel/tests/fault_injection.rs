//! Fault-injection suite for the guarded dispatch layer: seeded,
//! deterministic faults (Monge-violating entries, panicking reads,
//! latency) are driven through [`Dispatcher::solve_guarded`] to prove
//! the robustness contract:
//!
//! * injected structure violations are caught (Fail) or quarantined
//!   (solve still returns correct extrema for the *corrupted* array);
//! * panics from array evaluation never escape `solve_guarded`;
//! * the fallback chain always terminates — at the brute-force scan in
//!   the worst case — and every degraded solve records its path in the
//!   telemetry;
//! * fallback results match the sequential reference.

use std::time::Duration;

use monge_core::array2d::{Array2d, Dense};
use monge_core::generators::{apply_staircase, random_monge_dense, random_staircase_boundary};
use monge_core::guard::{FaultInjector, FaultPlan, GuardPolicy, SolveError};
use monge_core::problem::{Problem, Solution, Telemetry};
use monge_parallel::{Backend, BruteForceBackend, Dispatcher, Tuning};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn monge_16() -> Dense<i64> {
    let mut rng = StdRng::seed_from_u64(0xFA17);
    random_monge_dense(16, 16, &mut rng)
}

/// Leftmost row minima by direct scan of whatever the array reports —
/// the ground truth even when entries are corrupted.
fn scan_row_minima<A: Array2d<i64>>(a: &A) -> Vec<usize> {
    (0..a.rows())
        .map(|i| {
            let mut best = 0usize;
            for j in 1..a.cols() {
                if a.entry(i, j) < a.entry(i, best) {
                    best = j;
                }
            }
            best
        })
        .collect()
}

#[test]
fn panics_never_escape_solve_guarded() {
    let base = monge_16();
    // Every entry read panics: all chain links (brute included) fail,
    // and the layer must still return a typed error.
    let f = FaultInjector::new(base, FaultPlan::none(1).panics(1000), 0i64);
    let d = Dispatcher::with_default_backends();
    for policy in [
        GuardPolicy::default(),
        GuardPolicy::full_validation(),
        GuardPolicy::sampled_validation(),
    ] {
        match d.solve_guarded(&Problem::row_minima(&f), &policy) {
            Err(SolveError::BackendPanic { payload, .. }) => {
                assert!(payload.contains("injected"), "payload: {payload}");
            }
            other => panic!("expected BackendPanic, got {other:?}"),
        }
    }
}

#[test]
fn panic_budget_lets_a_fallback_attempt_succeed() {
    let base = monge_16();
    let reference = scan_row_minima(&base);
    // One transient panic: the first attempt dies, the retry on the
    // next chain link sees an exhausted budget and runs clean.
    let f = FaultInjector::new(base, FaultPlan::none(2).panics(1000).panic_budget(1), 0i64);
    let d = Dispatcher::with_default_backends();
    let (sol, tel) = d
        .solve_guarded(&Problem::row_minima(&f), &GuardPolicy::default())
        .expect("the fallback chain absorbs a transient panic");
    assert_eq!(sol.into_rows().index, reference);
    assert!(f.panics_fired() >= 1, "the panic site was encountered");
    let guard = tel.guard.expect("guarded solves stamp an outcome");
    assert!(guard.degraded(), "first attempt must be recorded as failed");
    assert!(guard.fallback_depth() >= 1);
    assert!(guard.attempts.len() >= 2);
}

#[test]
fn quarantined_solves_match_a_direct_scan_of_the_corrupted_array() {
    let base = monge_16();
    let f = FaultInjector::new(base, FaultPlan::none(3).violations(150), 100_000i64);
    let sites = (0..16)
        .flat_map(|i| (0..16).map(move |j| (i, j)))
        .filter(|&(i, j)| f.is_violation_site(i, j))
        .count();
    assert!(sites > 0, "plan must inject at least one violation");
    let reference = scan_row_minima(&f);

    let d = Dispatcher::with_default_backends();
    let (sol, tel) = d
        .solve_guarded(&Problem::row_minima(&f), &GuardPolicy::full_validation())
        .expect("quarantine degrades, it does not fail");
    assert_eq!(
        sol.into_rows().index,
        reference,
        "quarantined solve must be correct for the array as it is"
    );
    let guard = tel.guard.expect("guarded solves stamp an outcome");
    assert!(guard.quarantined);
    assert!(guard.witness.is_some());
    assert_eq!(guard.fallback_path(), vec!["brute"]);
}

#[test]
fn fail_action_returns_a_verifiable_witness() {
    let base = monge_16();
    let f = FaultInjector::new(base, FaultPlan::none(4).violations(150), 100_000i64);
    let d = Dispatcher::with_default_backends();
    let policy = GuardPolicy::full_validation().fail_on_violation();
    match d.solve_guarded(&Problem::row_minima(&f), &policy) {
        Err(SolveError::StructureViolation(w)) => {
            // The witness must name a quadruple that genuinely breaks
            // the quadrangle inequality on the corrupted array.
            let lhs = f.entry(w.i, w.j) + f.entry(w.k, w.l);
            let rhs = f.entry(w.i, w.l) + f.entry(w.k, w.j);
            assert!(w.i < w.k && w.j < w.l, "witness indices are ordered");
            assert!(lhs > rhs, "witness quadruple must violate Monge: {w}");
        }
        other => panic!("expected StructureViolation, got {other:?}"),
    }
}

#[test]
fn sampled_validation_catches_density_at_least_one_over_n() {
    // 150/1000 sites on a 16-wide array is density well above 1/n; the
    // 16(m+n)-sample budget must catch it for every seed tried.
    let base = monge_16();
    let d = Dispatcher::with_default_backends();
    for seed in 0..8u64 {
        let f = FaultInjector::new(base.clone(), FaultPlan::none(5).violations(150), 100_000i64);
        let policy = GuardPolicy::sampled_validation().with_seed(seed);
        let (_, tel) = d
            .solve_guarded(&Problem::row_minima(&f), &policy)
            .expect("sampled mode quarantines by default");
        let guard = tel.guard.expect("guarded solves stamp an outcome");
        assert!(guard.quarantined, "seed {seed} missed dense corruption");
    }
}

#[test]
fn latency_faults_are_benign_without_a_deadline() {
    let base = monge_16();
    let reference = scan_row_minima(&base);
    let f = FaultInjector::new(
        base,
        FaultPlan::none(6).latency(100, Duration::from_micros(50)),
        0i64,
    );
    let d = Dispatcher::with_default_backends();
    let (sol, tel) = d
        .solve_guarded(&Problem::row_minima(&f), &GuardPolicy::default())
        .expect("latency alone never fails a solve");
    assert_eq!(sol.into_rows().index, reference);
    let guard = tel.guard.expect("guarded solves stamp an outcome");
    assert!(!guard.degraded());
}

#[test]
fn an_expired_deadline_is_a_typed_error() {
    let base = monge_16();
    let f = FaultInjector::new(base, FaultPlan::none(7), 0i64);
    let d = Dispatcher::with_default_backends();
    let policy = GuardPolicy::default().with_deadline(Duration::ZERO);
    match d.solve_guarded(&Problem::row_minima(&f), &policy) {
        Err(SolveError::DeadlineExceeded { deadline, .. }) => {
            assert_eq!(deadline, Duration::ZERO);
        }
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
}

#[test]
fn clean_instances_solve_without_degradation() {
    let base = monge_16();
    let d = Dispatcher::with_default_backends();
    let (sol, tel) = d
        .solve_guarded(&Problem::row_minima(&base), &GuardPolicy::full_validation())
        .expect("clean Monge input passes full validation");
    assert_eq!(sol.into_rows().index, scan_row_minima(&base));
    let guard = tel.guard.expect("guarded solves stamp an outcome");
    assert!(!guard.quarantined);
    assert!(!guard.degraded());
    assert_eq!(guard.fallback_depth(), 0);
    assert!(guard.validation_nanos > 0, "full validation costs time");
}

#[test]
fn brute_terminal_matches_sequential_on_every_problem_kind() {
    let mut rng = StdRng::seed_from_u64(0xB0B);
    let d = Dispatcher::with_default_backends();
    let t = Tuning::DEFAULT;
    let a = random_monge_dense(12, 17, &mut rng);

    let solve_both = |problem: &Problem<'_, i64>| -> (Solution<i64>, Solution<i64>) {
        let (seq, _) = d
            .solve_on("sequential", problem, t)
            .expect("sequential is total");
        let mut tel = Telemetry::default();
        let brute = BruteForceBackend.solve(problem, &t, &mut tel);
        assert!(tel.evaluations > 0, "brute must meter its entry reads");
        (seq, brute)
    };

    let (s, b) = solve_both(&Problem::row_minima(&a));
    assert_eq!(s.into_rows().index, b.into_rows().index);

    let boundary = random_staircase_boundary(12, 17, &mut rng);
    let stair = apply_staircase(&a, &boundary);
    let (s, b) = solve_both(&Problem::staircase_row_minima(&stair, &boundary));
    assert_eq!(s.into_rows().index, b.into_rows().index);

    let lo: Vec<usize> = (0..12).map(|i| i.min(16)).collect();
    let hi: Vec<usize> = (0..12).map(|i| (i + 6).min(17)).collect();
    let p = Problem::banded_row_minima(&a, &lo, &hi);
    let (s, b) = solve_both(&p);
    let (si, sv) = s.banded();
    let (bi, bv) = b.banded();
    assert_eq!(si, bi);
    assert_eq!(sv, bv);

    let e = random_monge_dense(17, 9, &mut rng);
    let (s, b) = solve_both(&Problem::tube_minima(&a, &e));
    let (st, bt) = (s.into_tube(), b.into_tube());
    assert_eq!(st.index, bt.index);
    assert_eq!(st.value, bt.value);
}

#[test]
fn all_open_circuits_land_on_brute_for_every_problem_kind() {
    use monge_core::guard::BreakerState;
    use monge_parallel::{HealthConfig, HealthRegistry, VirtualClock};
    use std::sync::Arc;

    // Every non-terminal circuit forced Open (virtual clock: no
    // cooldown ever elapses): the guarded chain must skip straight to
    // the exempt brute terminal and still answer correctly on all
    // seven problem kinds.
    let clock = Arc::new(VirtualClock::new());
    let registry = Arc::new(HealthRegistry::new(HealthConfig::DEFAULT, clock));
    let d = Dispatcher::with_default_backends().with_health_registry(registry.clone());
    registry.force_open("sequential");
    registry.force_open("rayon");

    let reference = Dispatcher::with_default_backends();
    let mut rng = StdRng::seed_from_u64(0x0C1);
    let a = random_monge_dense(14, 11, &mut rng);
    let boundary = random_staircase_boundary(14, 11, &mut rng);
    let stair = apply_staircase(&a, &boundary);
    let lo: Vec<usize> = (0..14).map(|i| (i / 2).min(10)).collect();
    let hi: Vec<usize> = (0..14).map(|i| (i / 2 + 5).min(11)).collect();
    let e = random_monge_dense(11, 7, &mut rng);
    let problems: Vec<Problem<'_, i64>> = vec![
        Problem::row_minima(&a),
        Problem::row_maxima(&a),
        Problem::staircase_row_minima(&stair, &boundary),
        Problem::banded_row_minima(&a, &lo, &hi),
        Problem::banded_row_maxima(&a, &lo, &hi),
        Problem::tube_minima(&a, &e),
        Problem::tube_maxima(&a, &e),
    ];
    assert_eq!(
        problems.len(),
        monge_core::problem::ProblemKind::ALL.len(),
        "one instance per problem kind"
    );
    for p in &problems {
        let (sol, tel) = d
            .solve_guarded(p, &GuardPolicy::default())
            .unwrap_or_else(|e| panic!("{:?} must reach brute, got {e}", p.kind()));
        let (want, _) = reference
            .solve_guarded(p, &GuardPolicy::default())
            .expect("reference dispatcher is healthy");
        assert_eq!(sol, want, "{:?}", p.kind());
        let guard = tel.guard.expect("guarded solves stamp an outcome");
        assert_eq!(
            guard.fallback_path(),
            vec!["brute"],
            "{:?}: only the exempt terminal may run",
            p.kind()
        );
        assert!(
            tel.breaker_skips >= 1,
            "{:?}: skipped links are counted, got {}",
            p.kind(),
            tel.breaker_skips
        );
        let snap = tel
            .health_snapshot
            .expect("successful solves carry a snapshot");
        for name in ["sequential", "rayon"] {
            if let Some(s) = snap.iter().find(|s| s.backend == name) {
                assert_eq!(s.state, BreakerState::Open, "{name} stays open");
            }
        }
    }
    // The registry never transitioned: virtual time never advanced.
    assert_eq!(registry.state("sequential"), BreakerState::Open);
    assert_eq!(registry.state("rayon"), BreakerState::Open);
}

#[test]
fn violations_and_panics_compose_without_escaping() {
    // Both fault kinds at once, across seeds: whatever happens, the
    // result is a typed Ok/Err — never a propagating panic — and Ok
    // results are correct for the corrupted array.
    let base = monge_16();
    let d = Dispatcher::with_default_backends();
    for seed in 0..16u64 {
        let f = FaultInjector::new(
            base.clone(),
            FaultPlan::none(seed)
                .violations(100)
                .panics(30)
                .panic_budget(2),
            50_000i64,
        );
        match d.solve_guarded(&Problem::row_minima(&f), &GuardPolicy::full_validation()) {
            Ok((sol, tel)) => {
                // The reference scan may trip a panic site the solve
                // never reached (budget left over); only compare when
                // it reads clean.
                let scan =
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| scan_row_minima(&f)));
                if let Ok(reference) = scan {
                    assert_eq!(sol.into_rows().index, reference, "seed {seed}");
                }
                assert!(tel.guard.is_some());
            }
            Err(e) => {
                assert!(
                    matches!(e, SolveError::BackendPanic { .. }),
                    "seed {seed}: unexpected error {e}"
                );
            }
        }
    }
}
