//! Steady-state allocation regression tests (ISSUE PR 2 tentpole
//! acceptance): once the thread-local scratch arena is warm, the
//! sequential search leaves perform **zero** heap allocations, and every
//! engine's per-call allocation count is a small constant — flat in the
//! input size (output vectors only), not `O(lg n)` from recursion
//! temporaries.
//!
//! The counting `#[global_allocator]` lives here rather than in the
//! library crates because wrapping `System` requires `unsafe`, which the
//! libraries forbid. Everything is measured with *huge* tuning cutoffs so
//! the rayon engines degenerate to their sequential leaves on the calling
//! thread — deterministic single-threaded execution, which is exactly the
//! steady-state leaf the tentpole targets. Each measurement takes the
//! minimum over several identical runs so stray harness-thread
//! allocations cannot inflate the count.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use monge_core::array2d::Dense;
use monge_core::generators::apply_staircase;
use monge_core::smawk::{row_maxima_monge_into, row_minima_monge_into};
use monge_core::staircase::{staircase_row_maxima, staircase_row_minima};
use monge_core::tube::tube_minima;
use monge_parallel::rayon_monge::par_row_minima_totally_monotone_with;
use monge_parallel::rayon_staircase::par_staircase_row_minima_with;
use monge_parallel::rayon_tube::par_tube_minima_dc_with;
use monge_parallel::Tuning;

struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Allocations performed by one call of `f`, minimized over several runs.
/// Run 1 doubles as arena warm-up for this input size; the minimum over
/// the later runs is the steady-state count.
fn count_allocs(mut f: impl FnMut()) -> u64 {
    let mut min = u64::MAX;
    for _ in 0..5 {
        let before = ALLOC_CALLS.load(Ordering::Relaxed);
        f();
        let after = ALLOC_CALLS.load(Ordering::Relaxed);
        min = min.min(after - before);
    }
    min
}

/// Convex-increments Monge array (same family as the crate doctests).
fn monge(m: usize, n: usize) -> Dense<i64> {
    Dense::tabulate(m, n, |i, j| {
        let d = i as i64 - j as i64;
        d * d
    })
}

/// Strictly sequential tuning: every cutoff so large that no engine ever
/// forks or fans out — the call *is* the leaf.
fn huge() -> Tuning {
    Tuning {
        seq_scan: usize::MAX >> 1,
        seq_rows: usize::MAX >> 1,
        tube_seq_planes: usize::MAX >> 1,
        ..Tuning::DEFAULT
    }
}

/// All sections share one `#[test]` so no other test thread allocates
/// through the global counter while a measurement is in flight.
#[test]
fn steady_state_allocation_counts() {
    let t = huge();

    // --- SMAWK leaves: exactly zero once warm. -----------------------
    // The `_into` entry points take a caller-provided output buffer, so
    // a warm call must not touch the heap at all.
    for &n in &[128usize, 512] {
        let a = monge(n, n);
        let mut out = vec![0usize; n];
        let minima = count_allocs(|| row_minima_monge_into(&a, &mut out));
        assert_eq!(minima, 0, "warm SMAWK minima allocated (n = {n})");
        let maxima = count_allocs(|| row_maxima_monge_into(&a, &mut out));
        assert_eq!(maxima, 0, "warm SMAWK maxima allocated (n = {n})");
    }

    // --- Staircase divide & conquer: output vector only, flat in n. --
    let staircase_counts: Vec<u64> = [96usize, 384]
        .iter()
        .map(|&n| {
            let base = monge(n, n);
            let f: Vec<usize> = (0..n).map(|i| (n - i).max(1)).collect();
            let a = apply_staircase(&base, &f);
            let c_min = count_allocs(|| {
                staircase_row_minima(&a, &f);
            });
            let c_max = count_allocs(|| {
                staircase_row_maxima(&a, &f);
            });
            assert!(c_min <= 2, "staircase minima: {c_min} allocs (n = {n})");
            assert!(c_max <= 2, "staircase maxima: {c_max} allocs (n = {n})");
            c_min + c_max
        })
        .collect();
    assert_eq!(
        staircase_counts[0], staircase_counts[1],
        "staircase allocation count grew with input size"
    );

    // --- Tube minima: the two p×r output vectors, flat in volume. ----
    let tube_counts: Vec<u64> = [16usize, 48]
        .iter()
        .map(|&s| {
            let d = monge(s, s);
            let e = monge(s, s);
            let c = count_allocs(|| {
                tube_minima(&d, &e);
            });
            assert!(c <= 2, "tube minima: {c} allocs (s = {s})");
            c
        })
        .collect();
    assert_eq!(
        tube_counts[0], tube_counts[1],
        "tube allocation count grew with input size"
    );

    // --- Rayon engines, sequentialized by the huge cutoffs: the leaf
    // they bottom out into must allocate only its output. -------------
    let rayon_counts: Vec<u64> = [128usize, 512]
        .iter()
        .map(|&n| {
            let a = monge(n, n);
            let c_mono = count_allocs(|| {
                par_row_minima_totally_monotone_with(&a, t);
            });
            assert!(c_mono <= 1, "rayon monge leaf: {c_mono} allocs (n = {n})");

            let f: Vec<usize> = (0..n).map(|i| (n - i).max(1)).collect();
            let sa = apply_staircase(&a, &f);
            let c_stair = count_allocs(|| {
                par_staircase_row_minima_with(&sa, &f, t);
            });
            assert!(
                c_stair <= 2,
                "rayon staircase leaf: {c_stair} allocs (n = {n})"
            );

            let c_tube = count_allocs(|| {
                par_tube_minima_dc_with(&a, &a, t);
            });
            assert!(c_tube <= 4, "rayon tube leaf: {c_tube} allocs (n = {n})");
            c_mono + c_stair + c_tube
        })
        .collect();
    assert_eq!(
        rayon_counts[0], rayon_counts[1],
        "rayon engine allocation count grew with input size"
    );
}
