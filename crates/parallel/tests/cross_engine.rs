//! Cross-backend conformance, generated from the dispatcher registry:
//! one instance generator per [`ProblemKind`], each instance solved on
//! **every** backend that declares itself eligible and compared against
//! the sequential reference — same optima *and* same leftmost
//! tie-breaking. Registering a new backend automatically enrols it
//! here; no hand-enumerated engine pairs.

use monge_core::array2d::{Array2d, Dense};
use monge_core::generators::{apply_staircase, random_monge_dense, random_staircase_boundary};
use monge_core::problem::{Problem, ProblemKind};
use monge_parallel::{Dispatcher, Tuning};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::BTreeSet;

/// Solves `problem` on every eligible backend and checks each solution
/// against the sequential reference. Returns the backends that ran.
fn conform(
    d: &Dispatcher<i64>,
    problem: &Problem<'_, i64>,
    t: Tuning,
    ctx: &str,
) -> Vec<&'static str> {
    let (reference, _) = d
        .solve_on("sequential", problem, t)
        .expect("the sequential backend is total");
    let mut ran = Vec::new();
    for b in d.eligible(problem) {
        let name = b.name();
        let (sol, tel) = d
            .solve_on(name, problem, t)
            .expect("an eligible backend must accept the problem");
        assert_eq!(tel.backend, name, "{ctx}: telemetry names the backend");
        assert_eq!(
            tel.kind,
            Some(problem.kind()),
            "{ctx}: telemetry names the kind"
        );
        assert_eq!(
            &sol, &reference,
            "{ctx}: backend {name} disagrees with the sequential reference"
        );
        ran.push(name);
    }
    ran
}

/// Grain cutoffs for a trial: the default, the degenerate all-ones
/// tuning (every recursion forks down to single rows/planes — the
/// configuration most likely to expose a cutoff off-by-one), or random.
fn tuning_for(trial: u64, rng: &mut StdRng) -> Tuning {
    match trial % 3 {
        0 => Tuning::DEFAULT,
        1 => Tuning {
            seq_scan: 1,
            seq_rows: 1,
            tube_seq_planes: 1,
            pram_base_rows: 1,
            ..Tuning::DEFAULT
        },
        _ => Tuning {
            seq_scan: rng.random_range(1..64),
            seq_rows: rng.random_range(1..32),
            tube_seq_planes: rng.random_range(1..16),
            pram_base_rows: rng.random_range(1..8),
            ..Tuning::DEFAULT
        },
    }
}

/// Sorted-transport vectors: `|v_i - w_j|` is Monge, and the rank form
/// is what the hypercube engines require.
fn transport_vectors(m: usize, n: usize, rng: &mut StdRng) -> (Vec<i64>, Vec<i64>) {
    let mut v: Vec<i64> = (0..m).map(|_| rng.random_range(0..1_000)).collect();
    let mut w: Vec<i64> = (0..n).map(|_| rng.random_range(0..1_000)).collect();
    v.sort_unstable();
    w.sort_unstable();
    (v, w)
}

/// Monotone bands: non-decreasing for minima, non-increasing for maxima.
fn random_bands(
    m: usize,
    n: usize,
    increasing: bool,
    rng: &mut StdRng,
) -> (Vec<usize>, Vec<usize>) {
    let mut lo: Vec<usize> = (0..m).map(|_| rng.random_range(0..=n)).collect();
    let mut hi: Vec<usize> = (0..m).map(|_| rng.random_range(0..=n)).collect();
    if increasing {
        lo.sort_unstable();
        hi.sort_unstable();
    } else {
        lo.sort_unstable_by(|a, b| b.cmp(a));
        hi.sort_unstable_by(|a, b| b.cmp(a));
    }
    let lo = lo.iter().zip(&hi).map(|(&l, &h)| l.min(h)).collect();
    (lo, hi)
}

/// The registry-wide sweep: for every [`ProblemKind`], generate
/// certified instances (dense, inverse-Monge, rank-structured, plain)
/// and conform every eligible backend; afterwards every backend in the
/// registry must have participated for each kind it claims to support.
#[test]
fn every_problem_kind_conforms_across_the_registry() {
    let d = Dispatcher::with_all_backends();
    let mut ran_for: Vec<(ProblemKind, BTreeSet<&'static str>)> = ProblemKind::ALL
        .iter()
        .map(|&k| (k, BTreeSet::new()))
        .collect();
    let mut record = |kind: ProblemKind, names: Vec<&'static str>| {
        let slot = ran_for.iter_mut().find(|(k, _)| *k == kind).expect("kind");
        slot.1.extend(names);
    };

    for trial in 0..10u64 {
        let mut rng = StdRng::seed_from_u64(0xD15_7A7C4 + trial);
        let t = tuning_for(trial, &mut rng);
        let (m, n) = (rng.random_range(1..18), rng.random_range(1..18));
        let ctx = format!("trial {trial} ({m}x{n})");

        // Rows: dense Monge, its inverse-Monge mirror, and the
        // rank-structured transport form the hypercube engines need.
        let a = random_monge_dense(m, n, &mut rng);
        let inv = Dense::tabulate(m, n, |i, j| -a.entry(i, j));
        record(
            ProblemKind::RowMinima,
            conform(&d, &Problem::row_minima(&a), t, &ctx),
        );
        record(
            ProblemKind::RowMaxima,
            conform(&d, &Problem::row_maxima(&a), t, &ctx),
        );
        record(
            ProblemKind::RowMinima,
            conform(&d, &Problem::row_minima_inverse_monge(&inv), t, &ctx),
        );
        record(
            ProblemKind::RowMaxima,
            conform(&d, &Problem::row_maxima_inverse_monge(&inv), t, &ctx),
        );
        let (v, w) = transport_vectors(m, n, &mut rng);
        let g = |x: i64, y: i64| (x - y).abs();
        let ranked = Dense::tabulate(m, n, |i, j| g(v[i], w[j]));
        record(
            ProblemKind::RowMinima,
            conform(
                &d,
                &Problem::row_minima(&ranked).with_rank(&v, &w, &g),
                t,
                &ctx,
            ),
        );
        record(
            ProblemKind::RowMaxima,
            conform(
                &d,
                &Problem::row_maxima(&ranked).with_rank(&v, &w, &g),
                t,
                &ctx,
            ),
        );

        // Staircase: masked Monge instance, plus the rank form.
        let f = random_staircase_boundary(m, n, &mut rng);
        let sa = apply_staircase(&a, &f);
        record(
            ProblemKind::StaircaseRowMinima,
            conform(&d, &Problem::staircase_row_minima(&sa, &f), t, &ctx),
        );
        let masked_ranked = apply_staircase(&ranked, &f);
        record(
            ProblemKind::StaircaseRowMinima,
            conform(
                &d,
                &Problem::staircase_row_minima(&masked_ranked, &f).with_rank(&v, &w, &g),
                t,
                &ctx,
            ),
        );

        // Banded: monotone windows over the Monge instance.
        let (lo, hi) = random_bands(m, n, true, &mut rng);
        record(
            ProblemKind::BandedRowMinima,
            conform(&d, &Problem::banded_row_minima(&a, &lo, &hi), t, &ctx),
        );
        let (lo, hi) = random_bands(m, n, false, &mut rng);
        record(
            ProblemKind::BandedRowMaxima,
            conform(&d, &Problem::banded_row_maxima(&a, &lo, &hi), t, &ctx),
        );

        // Tube: a Monge-composite pair.
        let q = rng.random_range(1..10);
        let td = random_monge_dense(m.min(9), q, &mut rng);
        let te = random_monge_dense(q, n.min(9), &mut rng);
        record(
            ProblemKind::TubeMinima,
            conform(&d, &Problem::tube_minima(&td, &te), t, &ctx),
        );
        record(
            ProblemKind::TubeMaxima,
            conform(&d, &Problem::tube_maxima(&td, &te), t, &ctx),
        );
    }

    // Registry coverage: a backend claiming a kind must actually have
    // been exercised on it by the generators above (the hypercube
    // engine only for the kinds its rank/objective gates admit).
    for b in d.backends() {
        for kind in b.capabilities().kinds() {
            let always_admitted = match b.name() {
                "hypercube" => matches!(kind, ProblemKind::TubeMinima),
                _ => true,
            };
            let ran = ran_for
                .iter()
                .find(|(k, _)| *k == kind)
                .map(|(_, s)| s.contains(b.name()))
                .unwrap_or(false);
            assert!(
                !always_admitted || ran,
                "backend {} was never conformance-tested on {kind:?}",
                b.name()
            );
        }
    }
    // The rank-form generators must have pulled the hypercube engine
    // into the rows and staircase sweeps too.
    for kind in [
        ProblemKind::RowMinima,
        ProblemKind::RowMaxima,
        ProblemKind::StaircaseRowMinima,
    ] {
        let ran = &ran_for.iter().find(|(k, _)| *k == kind).unwrap().1;
        assert!(
            ran.contains("hypercube"),
            "rank-form instances never reached the hypercube backend for {kind:?}"
        );
    }
}

/// The plain (unstructured) rows escape hatch: host backends brute-scan,
/// simulators must not claim eligibility.
#[test]
fn plain_rows_conform_on_host_backends() {
    let d = Dispatcher::with_all_backends();
    for trial in 0..6u64 {
        let mut rng = StdRng::seed_from_u64(0xBEEF + trial);
        let t = tuning_for(trial, &mut rng);
        let (m, n) = (rng.random_range(1..24), rng.random_range(1..24));
        let a = Dense::tabulate(m, n, |i, j| {
            ((i * 7 + j * 13 + trial as usize) % 11) as i64 - 5
        });
        let ctx = format!("plain trial {trial}");
        let ran = conform(&d, &Problem::plain_row_minima(&a), t, &ctx);
        assert_eq!(ran, ["sequential", "rayon"], "{ctx}");
        let ran = conform(&d, &Problem::plain_row_maxima(&a), t, &ctx);
        assert_eq!(ran, ["sequential", "rayon"], "{ctx}");
    }
}

/// Rightmost tie-breaking flows through every backend that admits it
/// (hosts only — the simulators are leftmost-only and must decline).
#[test]
fn rightmost_ties_conform_where_admitted() {
    let d = Dispatcher::with_all_backends();
    for trial in 0..6u64 {
        let mut rng = StdRng::seed_from_u64(0x71E5 + trial);
        let t = tuning_for(trial, &mut rng);
        let (m, n) = (rng.random_range(1..16), rng.random_range(1..16));
        let a = random_monge_dense(m, n, &mut rng);
        let p = Problem::row_minima(&a).with_tie(monge_core::tiebreak::Tie::Right);
        let ran = conform(&d, &p, t, &format!("rightmost trial {trial}"));
        assert!(ran.contains(&"rayon"), "rayon must admit rightmost ties");
        assert!(
            ran.iter().all(|name| !name.starts_with("pram:")),
            "PRAM simulators are leftmost-only"
        );
    }
}
