//! Cross-engine agreement: the sequential (SMAWK / divide & conquer),
//! rayon, PRAM and hypercube engines must return identical argmin/argmax
//! vectors — same optima *and* same leftmost tie-breaking — on the same
//! certified random instances.

use monge_core::generators::{apply_staircase, random_monge_dense, random_staircase_boundary};
use monge_core::monge::{brute_row_maxima, brute_row_minima};
use monge_core::smawk::{row_maxima_monge, row_minima_monge};
use monge_core::staircase::staircase_row_minima;
use monge_core::tube::{tube_maxima, tube_minima};
use monge_core::Array2d;
use monge_parallel::pram_monge::{pram_row_maxima_monge, pram_row_minima_monge};
use monge_parallel::pram_staircase::{pram_staircase_row_minima, pram_staircase_row_minima_with};
use monge_parallel::pram_tube::{pram_tube_maxima, pram_tube_minima};
use monge_parallel::rayon_monge::{
    par_row_maxima_monge, par_row_maxima_monge_with, par_row_minima_monge,
    par_row_minima_monge_with,
};
use monge_parallel::rayon_staircase::{par_staircase_row_minima, par_staircase_row_minima_with};
use monge_parallel::rayon_tube::{
    par_tube_maxima, par_tube_minima, par_tube_minima_dc, par_tube_minima_dc_with,
};
use monge_parallel::{MinPrimitive, Tuning};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn dims() -> impl Strategy<Value = (usize, usize)> {
    (1usize..20, 1usize..20)
}

/// Randomized grain cutoffs, weighted toward the degenerate all-ones
/// tuning (every recursion forks down to single rows/planes — the
/// configuration most likely to expose a cutoff off-by-one).
fn tunings() -> impl Strategy<Value = Tuning> {
    prop_oneof![
        1 => Just(Tuning {
            seq_scan: 1,
            seq_rows: 1,
            tube_seq_planes: 1,
            pram_base_rows: 1,
        }),
        3 => (1usize..64, 1usize..32, 1usize..16, 1usize..8).prop_map(
            |(seq_scan, seq_rows, tube_seq_planes, pram_base_rows)| Tuning {
                seq_scan,
                seq_rows,
                tube_seq_planes,
                pram_base_rows,
            }
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn row_minima_engines_agree((m, n) in dims(), seed in any::<u64>()) {
        let a = random_monge_dense(m, n, &mut StdRng::seed_from_u64(seed));
        let seq = row_minima_monge(&a).index;
        prop_assert_eq!(&seq, &brute_row_minima(&a));
        prop_assert_eq!(&seq, &par_row_minima_monge(&a).index);
        prop_assert_eq!(&seq, &pram_row_minima_monge(&a, MinPrimitive::DoublyLog).index);
        prop_assert_eq!(&seq, &pram_row_minima_monge(&a, MinPrimitive::Tree).index);
    }

    #[test]
    fn row_maxima_engines_agree((m, n) in dims(), seed in any::<u64>()) {
        let a = random_monge_dense(m, n, &mut StdRng::seed_from_u64(seed));
        let seq = row_maxima_monge(&a).index;
        prop_assert_eq!(&seq, &brute_row_maxima(&a));
        prop_assert_eq!(&seq, &par_row_maxima_monge(&a).index);
        prop_assert_eq!(&seq, &pram_row_maxima_monge(&a, MinPrimitive::Constant).index);
    }

    #[test]
    fn staircase_engines_agree((m, n) in dims(), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let base = random_monge_dense(m, n, &mut rng);
        let f = random_staircase_boundary(m, n, &mut rng);
        let a = apply_staircase(&base, &f);
        let seq = staircase_row_minima(&a, &f);
        prop_assert_eq!(&seq, &par_staircase_row_minima(&a, &f));
        prop_assert_eq!(
            &seq,
            &pram_staircase_row_minima(&a, &f, MinPrimitive::DoublyLog).index
        );
    }

    #[test]
    fn tube_engines_agree(p in 1usize..10, q in 1usize..10, r in 1usize..10,
                          seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let d = random_monge_dense(p, q, &mut rng);
        let e = random_monge_dense(q, r, &mut rng);
        let seq_min = tube_minima(&d, &e);
        let seq_max = tube_maxima(&d, &e);
        prop_assert_eq!(&seq_min, &par_tube_minima(&d, &e));
        prop_assert_eq!(&seq_min, &par_tube_minima_dc(&d, &e));
        prop_assert_eq!(&seq_max, &par_tube_maxima(&d, &e));
        prop_assert_eq!(&seq_min, &pram_tube_minima(&d, &e, MinPrimitive::DoublyLog).extrema);
        prop_assert_eq!(&seq_max, &pram_tube_maxima(&d, &e, MinPrimitive::DoublyLog).extrema);
    }
}

/// Every cutoff-taking engine must be oblivious to its tuning: random
/// grain sizes (including the degenerate all-ones tuning) only move work
/// between the parallel recursion and the sequential leaves, never change
/// an answer.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn randomized_tuning_row_engines_agree((m, n) in dims(), seed in any::<u64>(),
                                           t in tunings()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = random_monge_dense(m, n, &mut rng);
        prop_assert_eq!(
            &row_minima_monge(&a).index,
            &par_row_minima_monge_with(&a, t).index
        );
        prop_assert_eq!(
            &row_maxima_monge(&a).index,
            &par_row_maxima_monge_with(&a, t).index
        );

        let f = random_staircase_boundary(m, n, &mut rng);
        let sa = apply_staircase(&a, &f);
        let seq = staircase_row_minima(&sa, &f);
        prop_assert_eq!(&seq, &par_staircase_row_minima_with(&sa, &f, t));
        prop_assert_eq!(
            &seq,
            &pram_staircase_row_minima_with(&sa, &f, MinPrimitive::DoublyLog, t).index
        );
    }

    #[test]
    fn randomized_tuning_tube_agrees(p in 1usize..10, q in 1usize..10, r in 1usize..10,
                                     seed in any::<u64>(), t in tunings()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let d = random_monge_dense(p, q, &mut rng);
        let e = random_monge_dense(q, r, &mut rng);
        prop_assert_eq!(&tube_minima(&d, &e), &par_tube_minima_dc_with(&d, &e, t));
    }
}

/// Hypercube engines run on the `VectorArray` model, so they get their
/// own generator (sorted-transport family) and a smaller case count
/// (network simulation is the slowest engine).
proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn hypercube_engines_agree((m, n) in (1usize..16, 1usize..16), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut v: Vec<i64> = (0..m).map(|_| rng.random_range(0..1_000)).collect();
        let mut w: Vec<i64> = (0..n).map(|_| rng.random_range(0..1_000)).collect();
        v.sort_unstable();
        w.sort_unstable();
        let a = monge_parallel::VectorArray::new(v, w, |x: i64, y: i64| (x - y).abs());
        let seq_min = row_minima_monge(&a).index;
        let seq_max = row_maxima_monge(&a).index;
        prop_assert_eq!(&seq_min, &monge_parallel::hc_monge::hc_row_minima(&a).index);
        prop_assert_eq!(&seq_max, &monge_parallel::hc_monge::hc_row_maxima(&a).index);

        // Staircase variant of the same instance.
        let f = random_staircase_boundary(m, n, &mut rng);
        let run = monge_parallel::hc_staircase::hc_staircase_row_minima(&a, &f);
        let dense = monge_core::array2d::Dense::tabulate(m, n, |i, j| {
            if j < f[i] { a.entry(i, j) } else { <i64 as monge_core::Value>::INFINITY }
        });
        prop_assert_eq!(&run.index, &staircase_row_minima(&dense, &f));
    }

    #[test]
    fn hypercube_tube_agrees(p in 1usize..8, q in 1usize..8, r in 1usize..8,
                             seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let d = random_monge_dense(p, q, &mut rng);
        let e = random_monge_dense(q, r, &mut rng);
        let run = monge_parallel::hc_tube::hc_tube_minima(&d, &e);
        prop_assert_eq!(&run.extrema, &tube_minima(&d, &e));
    }
}
