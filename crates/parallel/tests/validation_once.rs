//! Regression suite for the guarded layer's validate-once contract.
//!
//! `Dispatcher::solve_guarded*` validates the structural promise
//! exactly once per request, *before* walking the fallback chain —
//! a panicking first backend must not buy a second validation pass.
//! These tests pin that down two ways: by counting every entry read
//! through a counting array (deterministic), and by checking the
//! recorded `validation_nanos` stays a one-shot cost as the fallback
//! depth grows (the batch admission path reuses the same validator, so
//! this contract is what makes batched validation bookkeeping honest).

use std::sync::atomic::{AtomicU64, Ordering};

use monge_core::array2d::{Array2d, Dense};
use monge_core::generators::random_monge_dense;
use monge_core::guard::GuardPolicy;
use monge_core::problem::{Problem, ProblemKind, Solution, Telemetry};
use monge_parallel::{Backend, Capabilities, Dispatcher, Tuning};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Counts every `entry` read (validation and solving alike).
struct CountingArray {
    inner: Dense<i64>,
    reads: AtomicU64,
}

impl CountingArray {
    fn new(inner: Dense<i64>) -> Self {
        CountingArray {
            inner,
            reads: AtomicU64::new(0),
        }
    }

    fn reads(&self) -> u64 {
        self.reads.load(Ordering::Relaxed)
    }
}

impl Array2d<i64> for CountingArray {
    fn rows(&self) -> usize {
        self.inner.rows()
    }
    fn cols(&self) -> usize {
        self.inner.cols()
    }
    fn entry(&self, i: usize, j: usize) -> i64 {
        self.reads.fetch_add(1, Ordering::Relaxed);
        self.inner.entry(i, j)
    }
}

/// A chain link that reads nothing and always dies: any entry reads a
/// request makes beyond the zero-depth baseline would have to come
/// from re-validation.
struct AlwaysPanics(&'static str);

impl Backend<i64> for AlwaysPanics {
    fn name(&self) -> &'static str {
        self.0
    }
    fn capabilities(&self) -> Capabilities {
        Capabilities::of(&[ProblemKind::RowMinima])
    }
    fn solve(
        &self,
        _problem: &Problem<'_, i64>,
        _tuning: &Tuning,
        _telemetry: &mut Telemetry,
    ) -> Solution<i64> {
        panic!("injected: {} always dies", self.0);
    }
}

/// Entry reads and outcome of one guarded solve starting at `first`,
/// on a registry where the `"rayon"` chain link also always panics —
/// so `first = "flaky-a"` walks two dead links before the sequential
/// engine answers (fallback depth 2), while `first = "sequential"`
/// answers immediately (depth 0) with the *same* engine.
fn guarded_reads(first: &str, depth: usize) -> (u64, Solution<i64>, Telemetry) {
    let mut rng = StdRng::seed_from_u64(0x0A0B);
    let a = CountingArray::new(random_monge_dense(24, 24, &mut rng));
    let mut d: Dispatcher<i64> = Dispatcher::new();
    d.register(Box::new(AlwaysPanics("flaky-a")));
    d.register(Box::new(AlwaysPanics("rayon")));
    d.register(Box::new(monge_parallel::SequentialBackend));
    let policy = GuardPolicy::full_validation().with_max_fallback_depth(4);
    let p = Problem::row_minima(&a);
    let (sol, tel) = d
        .solve_guarded_on(first, &p, &policy, Tuning::DEFAULT)
        .expect("chain bottoms out at a working backend");
    let path = tel.guard.as_ref().expect("guard outcome").fallback_path();
    assert_eq!(path.len(), depth + 1, "unexpected chain {path:?}");
    assert_eq!(*path.last().unwrap(), "sequential");
    (a.reads(), sol, tel)
}

#[test]
fn validation_runs_once_regardless_of_fallback_depth() {
    // Depth 0: straight to the sequential engine.
    let (reads0, sol0, tel0) = guarded_reads("sequential", 0);
    // Depth 2: two panicking links first, then the same engine. The
    // panicking links read zero entries, so any extra reads would be a
    // second validation pass.
    let (reads2, sol2, tel2) = guarded_reads("flaky-a", 2);
    assert_eq!(sol0, sol2, "fallback must preserve the answer");
    assert_eq!(
        reads0, reads2,
        "entry reads grew with fallback depth: validation re-ran on the chain"
    );
    let v0 = tel0.guard.as_ref().unwrap().validation_nanos;
    let v2 = tel2.guard.as_ref().unwrap().validation_nanos;
    assert!(v0 > 0 && v2 > 0, "full validation must be timed");
    // The timed cost is one validation pass in both runs. Wall-clock is
    // noisy, so only a gross blow-up (a second full pass would at least
    // double it; we allow 5x for scheduler noise) trips this.
    assert!(
        v2 < v0.saturating_mul(5).max(1_000_000),
        "validation_nanos grew with fallback depth: {v0} -> {v2}"
    );
}

#[test]
fn batch_admission_validates_once_per_request() {
    use monge_parallel::BatchPolicy;

    let mut rng = StdRng::seed_from_u64(0x0C0D);
    let a = CountingArray::new(random_monge_dense(24, 24, &mut rng));
    let d = Dispatcher::with_default_backends();
    let policy = BatchPolicy::default()
        .with_guard(GuardPolicy::full_validation())
        .without_calibration();

    // One problem through the batch path...
    let problems = [Problem::row_minima(&a)];
    let before = a.reads();
    let results = d.solve_batch(&problems, policy);
    assert!(results[0].is_ok());
    let batch_reads = a.reads() - before;

    // ...must read no more entries than the one-at-a-time path (same
    // validation pass, same sequential engine, no calibration probes).
    let before = a.reads();
    let p = Problem::row_minima(&a);
    d.solve_guarded_with(&p, &GuardPolicy::full_validation(), Tuning::from_env())
        .expect("loop solve");
    let loop_reads = a.reads() - before;
    assert_eq!(
        batch_reads, loop_reads,
        "the batch admission pass reads more entries than a guarded solve"
    );
}
