//! Integration suite for the resilience layer (PR 9): circuit-breaker
//! transitions driven deterministically through `solve_guarded` on a
//! virtual clock, seeded retry/backoff against transient faults, the
//! global retry budget, typed `CircuitOpen` refusals, and the
//! `MONGE_BREAKER_*` / `MONGE_RETRY_*` environment knobs.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use monge_core::array2d::Dense;
use monge_core::generators::random_monge_dense;
use monge_core::guard::{
    BreakerState, FaultInjector, FaultPlan, GuardPolicy, RetryPolicy, SolveError,
};
use monge_core::problem::{Problem, Solution, Telemetry};
use monge_parallel::{
    Backend, Capabilities, Clock, Dispatcher, HealthConfig, HealthRegistry, SequentialBackend,
    Tuning, VirtualClock,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn monge(m: usize, n: usize, seed: u64) -> Dense<i64> {
    let mut rng = StdRng::seed_from_u64(seed);
    random_monge_dense(m, n, &mut rng)
}

/// A backend that panics while `failing` is set and otherwise delegates
/// to the sequential engine — the scripted fault source for driving the
/// breaker state machine from the outside.
struct ScriptedBackend {
    failing: Arc<AtomicBool>,
    solves: AtomicU64,
}

impl Backend<i64> for ScriptedBackend {
    fn name(&self) -> &'static str {
        "scripted"
    }

    fn capabilities(&self) -> Capabilities {
        <SequentialBackend as Backend<i64>>::capabilities(&SequentialBackend)
    }

    fn solve(
        &self,
        problem: &Problem<'_, i64>,
        tuning: &Tuning,
        telemetry: &mut Telemetry,
    ) -> Solution<i64> {
        self.solves.fetch_add(1, Ordering::Relaxed);
        if self.failing.load(Ordering::Relaxed) {
            panic!("scripted fault");
        }
        SequentialBackend.solve(problem, tuning, telemetry)
    }
}

fn scripted_dispatcher(
    config: HealthConfig,
) -> (
    Dispatcher<i64>,
    Arc<VirtualClock>,
    Arc<HealthRegistry>,
    Arc<AtomicBool>,
) {
    let clock = Arc::new(VirtualClock::new());
    let registry = Arc::new(HealthRegistry::new(config, clock.clone()));
    let failing = Arc::new(AtomicBool::new(false));
    let mut d = Dispatcher::with_default_backends().with_health_registry(registry.clone());
    d.register(Box::new(ScriptedBackend {
        failing: failing.clone(),
        solves: AtomicU64::new(0),
    }));
    (d, clock, registry, failing)
}

#[test]
fn breaker_lifecycle_is_deterministic_through_solve_guarded() {
    let config = HealthConfig {
        open_after: 3,
        window: 8,
        cooldown: Duration::from_millis(100),
        ..HealthConfig::DEFAULT
    };
    let (d, clock, registry, failing) = scripted_dispatcher(config);
    let a = monge(12, 12, 1);
    let p = Problem::row_minima(&a);
    let policy = GuardPolicy::default();

    // Phase 1: three faulting solves trip the scripted circuit. Each
    // one still answers via the fallback chain.
    failing.store(true, Ordering::Relaxed);
    for i in 0..3 {
        let (_, tel) = d
            .solve_guarded_on("scripted", &p, &policy, Tuning::DEFAULT)
            .unwrap_or_else(|e| panic!("fallback absorbs fault {i}: {e}"));
        let path = tel.guard.unwrap().fallback_path();
        assert_eq!(path.first(), Some(&"scripted"), "attempt {i}: {path:?}");
    }
    assert_eq!(registry.state("scripted"), BreakerState::Open, "K=3 trips");

    // Phase 2: while Open, the chain skips the pinned backend without
    // paying for an attempt, and counts the skip.
    let (_, tel) = d
        .solve_guarded_on("scripted", &p, &policy, Tuning::DEFAULT)
        .expect("open circuit degrades, not fails");
    assert!(tel.breaker_skips >= 1);
    let path = tel.guard.unwrap().fallback_path();
    assert!(
        !path.contains(&"scripted"),
        "open circuit must not be attempted: {path:?}"
    );

    // Phase 3: the cooldown elapses on the virtual clock; the backend
    // is healthy again; the half-open probe closes the circuit.
    failing.store(false, Ordering::Relaxed);
    clock.advance(Duration::from_millis(100));
    let (_, tel) = d
        .solve_guarded_on("scripted", &p, &policy, Tuning::DEFAULT)
        .expect("probe runs the recovered backend");
    assert_eq!(tel.guard.unwrap().fallback_path(), vec!["scripted"]);
    assert_eq!(registry.state("scripted"), BreakerState::Closed);

    // Phase 4: a faulting probe re-opens instead.
    failing.store(true, Ordering::Relaxed);
    for _ in 0..3 {
        let _ = d.solve_guarded_on("scripted", &p, &policy, Tuning::DEFAULT);
    }
    assert_eq!(registry.state("scripted"), BreakerState::Open);
    clock.advance(Duration::from_millis(100));
    let _ = d.solve_guarded_on("scripted", &p, &policy, Tuning::DEFAULT);
    assert_eq!(
        registry.state("scripted"),
        BreakerState::Open,
        "failed probe re-opens with a fresh cooldown"
    );
}

#[test]
fn retry_absorbs_a_transient_panic_on_the_same_backend() {
    let clock = Arc::new(VirtualClock::new());
    let registry = Arc::new(HealthRegistry::new(HealthConfig::DEFAULT, clock.clone()));
    let d = Dispatcher::with_default_backends().with_health_registry(registry);
    let base = monge(16, 16, 2);
    // One transient panic, then clean reads.
    let f = FaultInjector::new(base, FaultPlan::none(2).panics(1000).panic_budget(1), 0i64);
    let policy = GuardPolicy::default().with_retry(RetryPolicy::retries(
        3,
        Duration::from_millis(1),
        Duration::from_millis(10),
    ));
    let (sol, tel) = d
        .solve_guarded(&Problem::row_minima(&f), &policy)
        .expect("one retry clears a budget-1 panic plan");
    assert!(sol.rows().index.len() == 16);
    assert_eq!(tel.retries, 1, "exactly one retry was spent");
    let guard = tel.guard.unwrap();
    assert_eq!(
        guard.fallback_path(),
        vec!["sequential", "sequential"],
        "the retry stays on the same chain link"
    );
    assert!(guard.degraded(), "the first attempt is still recorded");
    // The backoff slept on the virtual clock, not the wall clock.
    assert!(
        clock.now() > Duration::ZERO,
        "backoff advanced virtual time"
    );
}

#[test]
fn exhausted_retry_budget_falls_through_to_the_next_link() {
    let clock = Arc::new(VirtualClock::new());
    let config = HealthConfig {
        retry_budget: 0,
        retry_credit_milli: 0,
        ..HealthConfig::DEFAULT
    };
    let registry = Arc::new(HealthRegistry::new(config, clock));
    let d = Dispatcher::with_default_backends().with_health_registry(registry.clone());
    let base = monge(16, 16, 3);
    let f = FaultInjector::new(base, FaultPlan::none(3).panics(1000).panic_budget(1), 0i64);
    let policy = GuardPolicy::default().with_retry(RetryPolicy::retries(
        3,
        Duration::from_millis(1),
        Duration::from_millis(10),
    ));
    let (_, tel) = d
        .solve_guarded(&Problem::row_minima(&f), &policy)
        .expect("the chain still absorbs the fault");
    assert_eq!(tel.retries, 0, "no budget, no retries");
    let guard = tel.guard.unwrap();
    assert!(
        guard.fallback_path().len() >= 2 && guard.fallback_path()[0] != guard.fallback_path()[1],
        "fault fell through to the next link: {:?}",
        guard.fallback_path()
    );
    assert_eq!(registry.retry_tokens(), 0);
}

#[test]
fn circuit_open_is_a_typed_error_when_the_chain_cannot_reach_brute() {
    let clock = Arc::new(VirtualClock::new());
    let registry = Arc::new(HealthRegistry::new(HealthConfig::DEFAULT, clock));
    let d = Dispatcher::with_default_backends().with_health_registry(registry.clone());
    registry.force_open("sequential");
    let a = monge(8, 8, 4);
    // Depth 0 pins the chain to the named backend alone: with its
    // circuit open and the brute terminal truncated away, the solve is
    // refused with a typed, retryable error.
    let policy = GuardPolicy {
        max_fallback_depth: 0,
        ..GuardPolicy::default()
    };
    match d.solve_guarded_on(
        "sequential",
        &Problem::row_minima(&a),
        &policy,
        Tuning::DEFAULT,
    ) {
        Err(SolveError::CircuitOpen {
            backend,
            retry_after,
        }) => {
            assert_eq!(backend, "sequential");
            assert_eq!(
                retry_after,
                HealthConfig::DEFAULT.cooldown,
                "retry_after is the remaining cooldown on the virtual clock"
            );
        }
        other => panic!("expected CircuitOpen, got {other:?}"),
    }
}

#[test]
fn health_snapshot_rides_the_telemetry_merge() {
    let clock = Arc::new(VirtualClock::new());
    let registry = Arc::new(HealthRegistry::new(HealthConfig::DEFAULT, clock));
    let d = Dispatcher::with_default_backends().with_health_registry(registry);
    let a = monge(10, 10, 5);
    let (_, tel) = d
        .solve_guarded(&Problem::row_minima(&a), &GuardPolicy::default())
        .unwrap();
    let snap = tel.health_snapshot.as_ref().expect("snapshot stamped");
    let seq = snap
        .iter()
        .find(|s| s.backend == "sequential")
        .expect("the attempted backend is tracked");
    assert_eq!(seq.state, BreakerState::Closed);
    assert_eq!(seq.window_len, 1);
    assert_eq!(seq.window_failures, 0);
    // Merging keeps the latest snapshot and sums the counters.
    let older = Telemetry {
        retries: 2,
        breaker_skips: 1,
        health_snapshot: None,
        ..Telemetry::default()
    };
    let merged = Telemetry::merge(
        [&older, &tel]
            .into_iter()
            .cloned()
            .collect::<Vec<_>>()
            .iter(),
    );
    assert_eq!(merged.retries, 2);
    assert_eq!(merged.breaker_skips, 1);
    assert!(merged.health_snapshot.is_some(), "latest snapshot survives");
}

#[test]
fn env_knobs_configure_breaker_and_retry() {
    // Serialized in this one test: set, read, remove. Other tests in
    // this binary attach explicit registries, so a transient env change
    // cannot leak into their breaker behavior.
    std::env::set_var("MONGE_BREAKER_WINDOW", "9");
    std::env::set_var("MONGE_BREAKER_OPEN_AFTER", "2");
    std::env::set_var("MONGE_BREAKER_COOLDOWN_MS", "250");
    std::env::set_var("MONGE_RETRY_BUDGET", "7");
    let c = HealthConfig::from_env();
    std::env::remove_var("MONGE_BREAKER_WINDOW");
    std::env::remove_var("MONGE_BREAKER_OPEN_AFTER");
    std::env::remove_var("MONGE_BREAKER_COOLDOWN_MS");
    std::env::remove_var("MONGE_RETRY_BUDGET");
    assert_eq!(c.window, 9);
    assert_eq!(c.open_after, 2);
    assert_eq!(c.cooldown, Duration::from_millis(250));
    assert_eq!(c.retry_budget, 7);

    std::env::set_var("MONGE_RETRY_MAX", "4");
    std::env::set_var("MONGE_RETRY_BASE_MS", "2");
    std::env::set_var("MONGE_RETRY_MAX_MS", "50");
    let r = RetryPolicy::from_env();
    std::env::remove_var("MONGE_RETRY_MAX");
    std::env::remove_var("MONGE_RETRY_BASE_MS");
    std::env::remove_var("MONGE_RETRY_MAX_MS");
    assert_eq!(r.max_attempts, 4);
    assert_eq!(r.base_backoff, Duration::from_millis(2));
    assert_eq!(r.max_backoff, Duration::from_millis(50));

    // Malformed values fall back to defaults, like the tuning knobs.
    std::env::set_var("MONGE_BREAKER_WINDOW", "not-a-number");
    let c = HealthConfig::from_env();
    std::env::remove_var("MONGE_BREAKER_WINDOW");
    assert_eq!(c.window, HealthConfig::DEFAULT.window);
}
