//! # monge — facade crate
//!
//! One-stop re-export of the full workspace reproducing
//! *Aggarwal, Kravets, Park, Sen — "Parallel Searching in Generalized Monge
//! Arrays with Applications" (SPAA 1990)*:
//!
//! * [`core`] — array classes, generators and sequential algorithms
//!   (SMAWK, staircase row minima, tube maxima, ANSV, DIST products).
//! * [`pram`] — the synchronous PRAM simulator (EREW/CREW/CRCW).
//! * [`hypercube`] — the hypercube / CCC / shuffle-exchange simulator.
//! * [`parallel`] — the paper's parallel algorithms on three engines:
//!   rayon (real threads), simulated PRAM, simulated hypercube.
//! * [`apps`] — the paper's applications: rectangle problems, convex
//!   polygon neighbor problems, string editing, farthest neighbors.
//!
//! See the `examples/` directory for runnable walkthroughs and
//! `EXPERIMENTS.md` for the reproduction of the paper's tables.

pub use monge_apps as apps;
pub use monge_core as core;
pub use monge_hypercube as hypercube;
pub use monge_parallel as parallel;
pub use monge_pram as pram;
