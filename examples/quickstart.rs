//! Quickstart: build Monge-family arrays and search them with every
//! engine in the workspace.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use monge::core::array2d::{Array2d, Dense};
use monge::core::generators::{random_monge_dense, random_staircase_monge_dense};
use monge::core::monge::{is_monge, is_staircase_monge};
use monge::core::smawk::row_minima_monge;
use monge::core::staircase::{compute_boundary, staircase_row_minima};
use monge::core::Value;
use monge::parallel::pram_monge::pram_row_minima_monge;
use monge::parallel::rayon_monge::par_row_minima_monge;
use monge::parallel::MinPrimitive;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(42);

    // --- a certified random Monge array --------------------------------
    let n = 512;
    let a: Dense<i64> = random_monge_dense(n, n, &mut rng);
    assert!(is_monge(&a));
    println!("built a {n} x {n} Monge array (certified by the predicate)");

    // Sequential SMAWK: Θ(m+n).
    let seq = row_minima_monge(&a);
    println!(
        "SMAWK row minima: first rows argmin = {:?}",
        &seq.index[..8.min(n)]
    );

    // Rayon divide & conquer: same answer, multicore.
    let par = par_row_minima_monge(&a);
    assert_eq!(seq.index, par.index);
    println!("rayon engine agrees on all {n} rows");

    // Simulated CRCW PRAM: the paper's machine, with step accounting.
    let pram = pram_row_minima_monge(&a, MinPrimitive::Constant);
    assert_eq!(seq.index, pram.index);
    println!(
        "CRCW PRAM simulation: {} parallel steps, {} work, {} processors budgeted",
        pram.metrics.steps, pram.metrics.work, pram.processors
    );

    // --- staircase-Monge: the paper's §2 problem ------------------------
    let b = random_staircase_monge_dense(n, n, &mut rng);
    assert!(is_staircase_monge(&b));
    let f = compute_boundary(&b);
    let stair = staircase_row_minima(&b, &f);
    println!(
        "staircase-Monge row minima: row 0 argmin = {} (boundary {}), row {} argmin = {}",
        stair[0],
        f[0],
        n - 1,
        stair[n - 1]
    );
    // Every minimum is finite (inside the staircase).
    assert!((0..n).all(|i| stair[i] < f[i].max(1)));
    assert!(!b.entry(0, stair[0]).is_infinite());
    println!("all minima verified inside the finite staircase region");
}
