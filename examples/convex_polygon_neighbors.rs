//! Geometry walkthrough: the paper's Figure 1.1 example and the
//! visible/invisible neighbor application (§1.3, item 3).
//!
//! ```text
//! cargo run --release --example convex_polygon_neighbors
//! ```

use monge::apps::farthest::{farthest_across_chains, par_farthest_across_chains};
use monge::apps::geometry::ConvexPolygon;
use monge::apps::neighbors::{invisible_arcs, neighbors, Goal};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);

    // --- Figure 1.1: farthest neighbors across two chains ---------------
    let poly = ConvexPolygon::random(4000, 0.0, 0.0, 1000.0, &mut rng);
    let m = poly.len() / 2;
    let (p, q) = (poly.vertices[..m].to_vec(), poly.vertices[m..].to_vec());
    let far = farthest_across_chains(&p, &q);
    println!(
        "Figure 1.1: split a {}-gon into chains of {} and {} vertices",
        poly.len(),
        p.len(),
        q.len()
    );
    println!(
        "p_0's farthest Q-vertex is q_{} at distance {:.2}",
        far[0],
        p[0].dist(q[far[0]])
    );
    assert_eq!(far, par_farthest_across_chains(&p, &q));
    println!("(rayon engine agrees on all {} rows)", far.len());

    // --- App 3: visible & invisible neighbors ---------------------------
    let pp = ConvexPolygon::random(24, 0.0, 0.0, 100.0, &mut rng);
    let qq = ConvexPolygon::random(32, 350.0, 40.0, 100.0, &mut rng);
    let nv = neighbors(&pp, &qq, Goal::NearestVisible);
    let ni = neighbors(&pp, &qq, Goal::NearestInvisible);
    let arcs = invisible_arcs(&pp, &qq);
    println!();
    println!("App 3: two disjoint convex polygons (24 and 32 vertices)");
    for i in [0usize, 8, 16] {
        println!(
            "  p_{i}: nearest visible q_{:?}, nearest invisible q_{:?}, invisible arc {:?}",
            nv[i], ni[i], arcs[i]
        );
    }
    // The invisible sets are arcs — the structure behind the paper's
    // staircase-Monge formulation.
    assert!(arcs.iter().all(Option::is_some));
    println!("every invisible set is a contiguous arc of Q (checked)");
}
