//! String editing (§1.3, item 4): Wagner–Fischer, the antidiagonal
//! wavefront, the grid-DAG DIST pipeline, and script recovery.
//!
//! ```text
//! cargo run --release --example string_editing
//! ```

use monge::apps::string_edit::{
    apply_script, edit_distance_antidiagonal, edit_distance_dist_tree, edit_distance_dp,
    edit_script, CostModel, EditOp,
};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn main() {
    let costs = CostModel::unit();

    // A small worked example with script recovery.
    let x = b"kitten".to_vec();
    let y = b"sitting".to_vec();
    let (cost, ops) = edit_script(&x, &y, &costs);
    println!("edit(kitten -> sitting) = {cost}");
    for op in &ops {
        match op {
            EditOp::Delete(i) => println!("  delete  x[{i}] = '{}'", x[*i] as char),
            EditOp::Insert(j) => println!("  insert  y[{j}] = '{}'", y[*j] as char),
            EditOp::Substitute(i, j) if x[*i] != y[*j] => println!(
                "  replace x[{i}] = '{}' by y[{j}] = '{}'",
                x[*i] as char, y[*j] as char
            ),
            EditOp::Substitute(i, j) => println!("  keep    x[{i}] = y[{j}] = '{}'", x[*i] as char),
        }
    }
    assert_eq!(apply_script(&x, &y, &ops), y);

    // DNA-sized random instance: three engines, one answer.
    let mut rng = StdRng::seed_from_u64(99);
    let m = 600;
    let n = 700;
    let xs: Vec<u8> = (0..m)
        .map(|_| b"acgt"[rng.random_range(0..4usize)])
        .collect();
    let ys: Vec<u8> = (0..n)
        .map(|_| b"acgt"[rng.random_range(0..4usize)])
        .collect();
    let d0 = edit_distance_dp(&xs, &ys, &costs);
    let d1 = edit_distance_antidiagonal(&xs, &ys, &costs);
    let d2 = edit_distance_dist_tree(&xs, &ys, &costs, 8);
    println!();
    println!("random DNA strings |x| = {m}, |y| = {n}:");
    println!("  Wagner-Fischer DP        : {d0}");
    println!("  antidiagonal wavefront   : {d1}");
    println!("  grid-DAG DIST tube tree  : {d2}");
    assert!(d0 == d1 && d1 == d2);
    println!("all three engines agree.");
}
