//! A tour of the simulated machines: PRAM modes and write policies,
//! hypercube collectives, and the CCC/shuffle-exchange emulation pricing.
//!
//! ```text
//! cargo run --release --example pram_playground
//! ```

use monge::hypercube::ops::{scan_inclusive, sorted_gather};
use monge::hypercube::topology::EmulationCost;
use monge::hypercube::Hypercube;
use monge::pram::ops::{crcw_min_doubly_log, tree_min, VI};
use monge::pram::{Mode, Pram, WritePolicy};

fn main() {
    // --- PRAM: the same minimum, three machine models -------------------
    let vals: Vec<i64> = (0..4096)
        .map(|i| (i * 2654435761u64 as i64) % 100_000)
        .collect();

    // CREW binary tree: ⌈lg n⌉ steps.
    let mut crew = Pram::new(Mode::Crew);
    let cells: Vec<VI<i64>> = vals
        .iter()
        .enumerate()
        .map(|(i, &v)| VI::new(v, i))
        .collect();
    let region = crew.load(&cells);
    let at = tree_min(&mut crew, region);
    let crew_answer = crew.peek(at);
    println!(
        "CREW tree minimum: value {} at index {} in {} steps ({} work)",
        crew_answer.v,
        crew_answer.i,
        crew.metrics().steps,
        crew.metrics().work
    );

    // CRCW accelerated cascades: O(lg lg n) steps with n processors.
    let mut crcw = Pram::new(Mode::Crcw(WritePolicy::Arbitrary));
    let region = crcw.load(&cells);
    let at = crcw_min_doubly_log(&mut crcw, region, VI::new(0, 0), VI::new(0, 1));
    println!(
        "CRCW doubly-log minimum: same answer ({}) in {} steps \
         (O(lg lg n) — flat in n, unlike the tree's ⌈lg n⌉)",
        crcw.peek(at).v,
        crcw.metrics().steps
    );
    assert_eq!(crcw.peek(at), crew_answer);

    // Combining-Min CRCW: one step.
    let mut comb = Pram::new(Mode::Crcw(WritePolicy::Min));
    let region = comb.load(&cells);
    let at = monge::pram::ops::combining_min(&mut comb, region);
    println!(
        "combining-Min CRCW: same answer in {} step",
        comb.metrics().steps
    );
    assert_eq!(comb.peek(at), crew_answer);

    // --- Hypercube: scans and gathers, priced on CCC / shuffle-exchange -
    let dim = 12;
    let mut hc = Hypercube::<i64>::new(dim);
    let r = hc.alloc_reg(0);
    let data: Vec<i64> = (0..hc.nodes() as i64).collect();
    hc.load(r, &data);
    scan_inclusive(&mut hc, r, |a, b| a + b);
    let sums = hc.read_reg(r);
    println!();
    println!(
        "hypercube prefix sums over {} nodes: node 0 -> {}, last node -> {} \
         in {} exchange steps",
        hc.nodes(),
        sums[0],
        sums[hc.nodes() - 1],
        hc.metrics().comm_steps
    );

    // A random-access gather (every node reads another node's value).
    let table = hc.alloc_reg(0);
    hc.load(table, &data.iter().map(|x| 1000 + x).collect::<Vec<_>>());
    let valid = hc.alloc_reg(1);
    let key = hc.alloc_reg(0);
    hc.load(
        key,
        &(0..hc.nodes() as i64)
            .map(|i| (i * 7) % hc.nodes() as i64)
            .collect::<Vec<_>>(),
    );
    let resp = hc.alloc_reg(0);
    sorted_gather(
        &mut hc,
        valid,
        1,
        0,
        key,
        |c| c as usize,
        |k| k as i64,
        table,
        resp,
        i64::MAX,
    );
    println!(
        "sort-based gather of {} random reads completed; node 1 fetched {}",
        hc.nodes(),
        hc.peek(1, resp)
    );

    let cost = EmulationCost::price(hc.metrics(), dim);
    println!(
        "emulation pricing: {} hypercube steps -> {} on shuffle-exchange, {} on CCC",
        cost.hypercube_steps, cost.se_steps, cost.ccc_steps
    );
}
