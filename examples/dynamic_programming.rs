//! The introduction's Monge-structured dynamic programs: optimal binary
//! search trees (\[Yao80\]), the economic lot-size model (\[AP90\]), and
//! Hoffman's transportation greedy (\[Hof61\] / Monge 1781).
//!
//! ```text
//! cargo run --release --example dynamic_programming
//! ```

use monge::apps::lws::LotSize;
use monge::apps::obst::optimal_bst;
use monge::apps::transport::{min_cost_transport, northwest_corner, plan_cost};
use monge::core::generators::random_monge_dense;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(1781);

    // --- Optimal binary search tree (Knuth–Yao) -------------------------
    let freq: Vec<f64> = (0..2000).map(|_| rng.random_range(0.01..5.0)).collect();
    let t = optimal_bst(&freq);
    println!(
        "optimal BST over {} keys: weighted depth {:.2}, root = key {}",
        freq.len(),
        t.total_cost(),
        t.root_of(0, freq.len())
    );

    // --- Economic lot-size (Wagner–Whitin as concave LWS) ---------------
    let demand: Vec<f64> = (0..3650).map(|_| rng.random_range(0.0..20.0)).collect();
    let ls = LotSize::new(demand, 120.0, 0.35);
    let (cost, runs) = ls.solve();
    println!(
        "lot-size over {} periods: optimal cost {:.1} with {} production runs \
         (first five: {:?})",
        ls.demand.len(),
        cost,
        runs.len(),
        &runs[..5.min(runs.len())]
    );

    // --- Monge transportation (Hoffman's greedy) -------------------------
    let m = 60;
    let n = 80;
    let c = random_monge_dense(m, n, &mut rng);
    let supply: Vec<i64> = (0..m).map(|_| rng.random_range(1..30)).collect();
    let total: i64 = supply.iter().sum();
    let mut demandv = vec![total / n as i64; n];
    demandv[n - 1] = total - (n as i64 - 1) * (total / n as i64);
    let plan = northwest_corner(&supply, &demandv);
    let greedy = plan_cost(&plan, &c);
    println!(
        "transportation {}x{}: northwest-corner greedy ships {} units in {} moves, \
         cost {}",
        m,
        n,
        total,
        plan.len(),
        greedy
    );
    let opt = min_cost_transport(&supply, &demandv, &c);
    assert_eq!(greedy, opt);
    println!("min-cost-flow oracle confirms optimality (Hoffman 1961 on Monge costs).");
}
