//! The rectangle applications (§1.3, items 1 and 2): the largest empty
//! rectangle among points, and the largest rectangle spanned by two
//! points as opposite corners.
//!
//! ```text
//! cargo run --release --example largest_empty_rectangle
//! ```

use monge::apps::empty_rect::{
    is_empty_rect, largest_empty_rectangle, par_largest_empty_rectangle,
};
use monge::apps::geometry::{Point, Rect};
use monge::apps::max_rect::{largest_corner_rectangle, par_largest_corner_rectangle};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(2026);
    let bbox = Rect::new(0.0, 0.0, 1000.0, 1000.0);
    let points: Vec<Point> = (0..5000)
        .map(|_| Point::new(rng.random_range(0.0..1000.0), rng.random_range(0.0..1000.0)))
        .collect();

    // --- App 1: largest empty rectangle ---------------------------------
    let r = largest_empty_rectangle(&points, bbox);
    assert!(is_empty_rect(&points, r));
    println!(
        "App 1: among {} points, the largest empty rectangle is \
         [{:.1}, {:.1}] x [{:.1}, {:.1}], area {:.1}",
        points.len(),
        r.x0,
        r.x1,
        r.y0,
        r.y1,
        r.area()
    );
    let rp = par_largest_empty_rectangle(&points, bbox);
    assert!((r.area() - rp.area()).abs() < 1e-9);
    println!("        (parallel engine agrees: area {:.1})", rp.area());

    // --- App 2: largest two-corner rectangle ----------------------------
    let c = largest_corner_rectangle(&points);
    println!(
        "App 2: the most 'detrimental leakage path' pair [Mel89] spans \
         ({:.1}, {:.1}) - ({:.1}, {:.1}), rectangle area {:.1}",
        c.a.x, c.a.y, c.b.x, c.b.y, c.area
    );
    let cp = par_largest_corner_rectangle(&points);
    assert!((c.area - cp.area).abs() < 1e-9);
    println!("        (parallel engine agrees)");
}
